"""Turning a topological-tree path into a concrete broadcast schedule.

A root-to-leaf path of the topological tree (§3.1) is a sequence of
*compound nodes* — for each slot, the set of (at most k) tree nodes aired
simultaneously on the k channels. The path fixes every node's slot; what
remains is choosing a channel for each element. The paper's rules:

* put the element of the root compound node into the first channel;
* put elements whose nodes have a parent-child relationship in the index
  tree into the same channel if possible (fewer channel switches for the
  client).

:func:`assign_channels` implements that policy; :func:`assemble_schedule`
is the public entry point from a path to a validated
:class:`~repro.broadcast.schedule.BroadcastSchedule`.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ScheduleError
from ..tree.index_tree import IndexTree
from ..tree.node import Node
from .schedule import BroadcastSchedule

__all__ = ["assign_channels", "assemble_schedule"]


def assign_channels(
    groups: Sequence[Sequence[Node]], channels: int
) -> dict[Node, tuple[int, int]]:
    """Choose a channel for every element of every slot group.

    Elements preferring their parent's channel are placed first, then the
    rest fill the lowest free channels — a greedy realisation of the §3.1
    affinity rules. Raises :class:`ScheduleError` if a group exceeds the
    channel count.
    """
    placement: dict[Node, tuple[int, int]] = {}
    for slot, group in enumerate(groups, start=1):
        members = list(group)
        if len(members) > channels:
            raise ScheduleError(
                f"slot group {slot} holds {len(members)} nodes but only "
                f"{channels} channels exist"
            )
        taken: set[int] = set()
        deferred: list[Node] = []
        for node in members:
            preferred = _preferred_channel(node, slot, placement)
            if preferred is not None and preferred not in taken:
                placement[node] = (preferred, slot)
                taken.add(preferred)
            else:
                deferred.append(node)
        free = (c for c in range(1, channels + 1) if c not in taken)
        for node in deferred:
            channel = next(free)
            placement[node] = (channel, slot)
            taken.add(channel)
    return placement


def _preferred_channel(
    node: Node, slot: int, placement: dict[Node, tuple[int, int]]
) -> int | None:
    """The channel this node would like: root -> 1, else its parent's."""
    if node.parent is None:
        return 1
    if slot == 1:
        # First slot holds the root; only the root gets channel 1 by rule.
        return None
    parent_position = placement.get(node.parent)
    if parent_position is None:
        return None
    return parent_position[0]


def assemble_schedule(
    tree: IndexTree,
    path: Sequence[Sequence[Node]],
    channels: int,
    validate: bool = True,
) -> BroadcastSchedule:
    """Build a validated schedule from a topological-tree path.

    ``path`` lists the compound nodes from the topological root downward;
    group ``i`` airs at slot ``i``. The elements of each group go to the
    same slot of different channels, channels chosen per the §3.1 rules.
    """
    placement = assign_channels(path, channels)
    return BroadcastSchedule(tree, placement, channels=channels, validate=validate)
