"""Broadcast-channel substrate: buckets, schedules, pointers, metrics.

Models the slotted multi-channel broadcast medium of §2.1: each slot of
each channel carries one bucket (an index or data node), index buckets
embed (channel, offset) pointers to their children, and the whole cycle
repeats periodically.
"""

from .assembly import assemble_schedule, assign_channels
from .bucket import Bucket, Pointer
from .metrics import (
    data_wait,
    data_wait_of_order,
    expected_access_time,
    expected_channel_switches,
    expected_probe_wait,
    expected_tuning_time,
    per_item_waits,
)
from .pointers import BroadcastProgram, compile_program
from .schedule import BroadcastSchedule

__all__ = [
    "Bucket",
    "Pointer",
    "BroadcastSchedule",
    "BroadcastProgram",
    "compile_program",
    "assemble_schedule",
    "assign_channels",
    "data_wait",
    "data_wait_of_order",
    "expected_probe_wait",
    "expected_access_time",
    "expected_tuning_time",
    "expected_channel_switches",
    "per_item_waits",
]
