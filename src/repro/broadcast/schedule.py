"""The :class:`BroadcastSchedule` — a realised index-and-data allocation.

A schedule is the mapping function ``f : I ∪ D → C × S`` of §2.2: every
index and data node of the tree gets exactly one ``(channel, slot)``
position in the broadcast cycle (no replication). Feasibility requires a
child to air at a strictly later slot than its parent.

The class stores the assignment, validates feasibility, computes the
paper's objective (the weighted average data wait, formula (1)) and
renders the channel grid the way the paper's Fig. 2 draws it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..exceptions import ScheduleError
from ..tree.index_tree import IndexTree
from ..tree.node import Node

__all__ = ["BroadcastSchedule"]


class BroadcastSchedule:
    """An allocation of tree nodes to (channel, slot) positions.

    Parameters
    ----------
    tree:
        The index tree being broadcast.
    placement:
        Mapping from node object to ``(channel, slot)``, both 1-based.
    channels:
        Number of channels available. Defaults to the largest channel
        used; passing it explicitly lets a schedule under-use channels.
    validate:
        Check feasibility immediately (default). Searches that build
        schedules from already-verified paths may skip this.
    """

    def __init__(
        self,
        tree: IndexTree,
        placement: Mapping[Node, tuple[int, int]],
        channels: int | None = None,
        validate: bool = True,
    ) -> None:
        self.tree = tree
        self._placement: dict[Node, tuple[int, int]] = dict(placement)
        used_channels = max((c for c, _ in self._placement.values()), default=1)
        self.channels = channels if channels is not None else used_channels
        if validate:
            self.validate()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_sequence(
        cls, tree: IndexTree, order: Sequence[Node], validate: bool = True
    ) -> "BroadcastSchedule":
        """Single-channel schedule from a broadcast order (slot 1, 2, ...)."""
        placement = {node: (1, slot) for slot, node in enumerate(order, start=1)}
        return cls(tree, placement, channels=1, validate=validate)

    @classmethod
    def from_slot_groups(
        cls,
        tree: IndexTree,
        groups: Sequence[Sequence[Node]],
        channels: int,
        validate: bool = True,
    ) -> "BroadcastSchedule":
        """Schedule from compound slot groups (one group per slot).

        Channel choice within each group follows the §3.1 rules: the root
        goes to channel 1, and a node prefers the channel its index-tree
        parent used when that channel is still free in its slot — this
        minimises client channel switches. See
        :func:`repro.broadcast.assembly.assemble_schedule` for the
        rule-driven public entry point; this constructor applies the same
        policy.
        """
        from .assembly import assign_channels  # local import avoids a cycle

        placement = assign_channels(groups, channels)
        return cls(tree, placement, channels=channels, validate=validate)

    # -- lookups ----------------------------------------------------------------
    def position(self, node: Node) -> tuple[int, int]:
        """``(channel, slot)`` of ``node``."""
        return self._placement[node]

    def channel_of(self, node: Node) -> int:
        return self._placement[node][0]

    def slot_of(self, node: Node) -> int:
        """``T(node)``: 1-based slot index from the start of the cycle."""
        return self._placement[node][1]

    def nodes(self) -> Iterable[Node]:
        return self._placement.keys()

    @property
    def cycle_length(self) -> int:
        """Number of slots in the broadcast cycle."""
        return max((s for _, s in self._placement.values()), default=0)

    def node_at(self, channel: int, slot: int) -> Node | None:
        """The node broadcast at (channel, slot), or ``None`` if idle."""
        for node, (c, s) in self._placement.items():
            if c == channel and s == slot:
                return node
        return None

    def grid(self) -> list[list[Node | None]]:
        """``grid()[c-1][s-1]`` is the node on channel c at slot s (or None)."""
        cycle = self.cycle_length
        table: list[list[Node | None]] = [
            [None] * cycle for _ in range(self.channels)
        ]
        for node, (channel, slot) in self._placement.items():
            table[channel - 1][slot - 1] = node
        return table

    # -- objective -----------------------------------------------------------------
    def data_wait(self) -> float:
        """Formula (1): ``Σ W(D_i)·T(D_i) / Σ W(D_i)``.

        ``T(D_i)`` is the slot offset of data node ``D_i`` from the first
        bucket of the cycle (measured in buckets). Verified against the
        paper's worked values 6.01 and 3.88 in the test suite.
        """
        total_weight = 0.0
        weighted_wait = 0.0
        for node in self.tree.data_nodes():
            total_weight += node.weight
            weighted_wait += node.weight * self.slot_of(node)
        if total_weight == 0:
            return 0.0
        return weighted_wait / total_weight

    # -- invariants -----------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScheduleError` unless the schedule is feasible.

        Checks: every tree node placed exactly once; channels within
        ``1..self.channels``; slots positive; at most one node per
        (channel, slot) cell; and every child airs strictly after its
        parent (§2.2 feasibility).
        """
        tree_nodes = self.tree.nodes()
        if len(self._placement) != len(tree_nodes):
            raise ScheduleError(
                f"placement covers {len(self._placement)} nodes, "
                f"tree has {len(tree_nodes)}"
            )
        placed = {id(node) for node in self._placement}
        for node in tree_nodes:
            if id(node) not in placed:
                raise ScheduleError(f"node {node.label!r} is not placed")

        cells: set[tuple[int, int]] = set()
        for node, (channel, slot) in self._placement.items():
            if not 1 <= channel <= self.channels:
                raise ScheduleError(
                    f"node {node.label!r} on channel {channel}, "
                    f"schedule has {self.channels}"
                )
            if slot < 1:
                raise ScheduleError(f"node {node.label!r} at slot {slot} < 1")
            if (channel, slot) in cells:
                raise ScheduleError(
                    f"two nodes share channel {channel} slot {slot}"
                )
            cells.add((channel, slot))

        for node in tree_nodes:
            parent = node.parent
            if parent is None:
                continue
            if self.slot_of(node) <= self.slot_of(parent):
                raise ScheduleError(
                    f"child {node.label!r} (slot {self.slot_of(node)}) does "
                    f"not air after parent {parent.label!r} "
                    f"(slot {self.slot_of(parent)})"
                )

    # -- rendering -----------------------------------------------------------------
    def to_ascii(self) -> str:
        """Render the channel grid like the paper's Fig. 2."""
        table = self.grid()
        width = max(
            [2] + [len(n.label) for n in self._placement]
        )
        lines = []
        for channel_index, row in enumerate(table, start=1):
            cells = " ".join(
                (node.label if node is not None else ".").rjust(width)
                for node in row
            )
            lines.append(f"C{channel_index} | {cells}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BroadcastSchedule channels={self.channels} "
            f"cycle={self.cycle_length} wait={self.data_wait():.3f}>"
        )
