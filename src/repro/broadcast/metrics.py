"""Analytic performance metrics of a broadcast schedule.

The paper splits a request's *access time* into the **probe wait** (time to
capture the bucket holding the index root) and the **data wait** (time from
the cycle start to the required data bucket, formula (1)); the **tuning
time** — buckets actually listened to — measures battery drain (§1, §2.1).

All quantities are in bucket (slot) units. Timing conventions, chosen to
reproduce the paper's worked numbers and mirrored exactly by the
event-driven simulator in :mod:`repro.client`:

* a client tunes in uniformly at the start of some slot ``t`` of the cycle
  and reads channel 1 to learn the next-cycle pointer;
* the root airs at slot 1 of the next cycle (every schedule built by this
  library places the root at slot 1 on channel 1);
* a node occupying slot ``s`` is fully received at the end of slot ``s``,
  so ``T(D_i) = slot_of(D_i)`` — exactly the accounting behind the paper's
  6.01 / 3.88 examples.
"""

from __future__ import annotations

from typing import Sequence

from ..tree.node import DataNode, Node
from .schedule import BroadcastSchedule

__all__ = [
    "data_wait",
    "data_wait_of_order",
    "expected_probe_wait",
    "expected_access_time",
    "expected_tuning_time",
    "expected_channel_switches",
    "per_item_waits",
]


def data_wait(schedule: BroadcastSchedule) -> float:
    """Formula (1): weighted mean slot index of the data nodes."""
    return schedule.data_wait()


def data_wait_of_order(nodes: Sequence[Node]) -> float:
    """Data wait of a single-channel broadcast given as a node sequence.

    Position ``i`` (1-based) is the slot; only data nodes enter the sum.
    Useful for scoring candidate orders without building a schedule.
    """
    total_weight = 0.0
    weighted = 0.0
    for slot, node in enumerate(nodes, start=1):
        if isinstance(node, DataNode):
            total_weight += node.weight
            weighted += node.weight * slot
    if total_weight == 0:
        return 0.0
    return weighted / total_weight


def per_item_waits(schedule: BroadcastSchedule) -> dict[str, int]:
    """``T(D_i)`` per data node, keyed by label (diagnostics/reporting)."""
    return {
        node.label: schedule.slot_of(node)
        for node in schedule.tree.data_nodes()
    }


def expected_probe_wait(schedule: BroadcastSchedule) -> float:
    """Mean slots from tune-in until the root bucket has been read.

    Tuning in at the start of slot ``t`` (uniform over ``1..L``), the
    client finishes the current cycle (``L - t + 1`` slots, during the
    first of which it reads the next-cycle pointer) and then reads the
    root at slot ``r`` of the next cycle: ``L - t + 1 + r`` slots total,
    whose mean is ``(L + 1) / 2 + r``.
    """
    cycle = schedule.cycle_length
    root_slot = schedule.slot_of(schedule.tree.root)
    return (cycle + 1) / 2 + root_slot


def expected_access_time(schedule: BroadcastSchedule) -> float:
    """Mean slots from tune-in until the requested data is downloaded.

    Probe phase up to the start of the next cycle takes ``L - t + 1``
    slots (mean ``(L + 1) / 2``); the data item itself completes ``T(D_i)``
    slots into that cycle. Hence mean access time is
    ``(L + 1) / 2 + data_wait``.
    """
    return (schedule.cycle_length + 1) / 2 + schedule.data_wait()


def expected_tuning_time(schedule: BroadcastSchedule) -> float:
    """Mean number of buckets the client actively listens to.

    The accounting is the protocol's
    (:func:`repro.client.protocol.object_walk`), term for term: one
    bucket at tune-in (to read the next-cycle pointer), one per index
    node on the target's root path — the root included — and the data
    bucket itself. A data node with ``a`` proper ancestors therefore
    costs ``a + 2`` reads; under the paper's root-at-depth-1 convention
    that equals ``depth(D_i) + 1``, and the event-driven simulator's
    measured mean reproduces this expectation *exactly* (locked by
    regression tests, ``tests/broadcast/test_metrics.py``). Between
    reads the receiver dozes; this is the paper's energy metric (§1).
    """
    total_weight = schedule.tree.total_weight()
    if total_weight == 0:
        return 0.0
    weighted = sum(
        node.weight * (sum(1 for _ in node.ancestors()) + 2)
        for node in schedule.tree.data_nodes()
    )
    return weighted / total_weight


def expected_channel_switches(schedule: BroadcastSchedule) -> float:
    """Mean channel hops while following the root path to a data node.

    The §3.1 channel-affinity rules exist precisely to shrink this number;
    the ablation benches report it next to the data wait.
    """
    total_weight = schedule.tree.total_weight()
    if total_weight == 0:
        return 0.0
    weighted = 0.0
    for node in schedule.tree.data_nodes():
        path = schedule.tree.ancestors_of(node) + [node]
        hops = sum(
            1
            for earlier, later in zip(path, path[1:])
            if schedule.channel_of(earlier) != schedule.channel_of(later)
        )
        weighted += node.weight * hops
    return weighted / total_weight
