"""Plain-text table rendering for experiment output.

Benches and the CLI print their results through :func:`format_table` so
every harness reports in the same aligned, diff-friendly format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_number"]


def format_number(value: object, precision: int = 2) -> str:
    """Human-friendly cell content: ints verbatim, floats rounded,
    huge ints in scientific notation, ``None`` as N/A."""
    if value is None:
        return "N/A"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        if abs(value) >= 10**12:
            return f"{float(value):.2e}"
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [
        [format_number(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in rendered:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
