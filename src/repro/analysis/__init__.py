"""Experiment runners that regenerate the paper's table and figure, plus
the ablation sweeps committed to in DESIGN.md."""

from .comparisons import (
    ChannelScalingPoint,
    MethodComparison,
    PruningAblationRow,
    channel_scaling,
    compare_methods,
    format_channel_scaling,
    format_method_comparison,
    format_pruning_ablation,
    pruning_ablation,
)
from .faults_sweep import (
    DifferentialCheck,
    FaultSweepPoint,
    FaultSweepReport,
    format_fault_sweep,
    run_fault_sweep,
)
from .fig14 import Fig14Point, Fig14Report, format_fig14, run_fig14
from .reporting import format_number, format_table
from .sensitivity import (
    FanoutPoint,
    SkewPoint,
    fanout_sensitivity,
    format_fanout_sensitivity,
    format_skew_sensitivity,
    skew_sensitivity,
)
from .table1 import Table1Report, format_table1, run_table1

__all__ = [
    "format_table",
    "format_number",
    "Table1Report",
    "run_table1",
    "format_table1",
    "Fig14Point",
    "Fig14Report",
    "run_fig14",
    "format_fig14",
    "MethodComparison",
    "compare_methods",
    "format_method_comparison",
    "ChannelScalingPoint",
    "channel_scaling",
    "format_channel_scaling",
    "PruningAblationRow",
    "pruning_ablation",
    "format_pruning_ablation",
    "FanoutPoint",
    "fanout_sensitivity",
    "format_fanout_sensitivity",
    "SkewPoint",
    "skew_sensitivity",
    "format_skew_sensitivity",
    "DifferentialCheck",
    "FaultSweepPoint",
    "FaultSweepReport",
    "run_fault_sweep",
    "format_fault_sweep",
]
