"""Experiment runner for Fig. 14 — Index Tree Sorting vs Optimal (§4.2).

The paper's setup: a full balanced 4-ary tree of depth 3 (16 data
nodes), data weights drawn from ``N(µ = 100, σ)``, single broadcast
channel; the average data wait of the Sorting heuristic is plotted
against the exact optimum for σ ∈ {10, 20, 30, 40}. The headline shape:
Sorting tracks Optimal closely, with the gap opening slowly as the
variance (skew) grows.

We average over many independent weight draws per σ (the paper does not
state its trial count; 30 keeps the run under a minute and the series
smooth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.optimal import solve
from ..heuristics.sorting import sorting_broadcast
from ..tree.builders import balanced_tree
from ..workloads.weights import normal_weights
from .reporting import format_table

__all__ = ["Fig14Point", "Fig14Report", "run_fig14", "format_fig14"]


@dataclass
class Fig14Point:
    """One σ sample of the Fig. 14 series (means over the trials)."""

    sigma: float
    optimal_wait: float
    sorting_wait: float

    @property
    def gap_percent(self) -> float:
        """How far Sorting sits above Optimal, in percent."""
        if self.optimal_wait == 0:
            return 0.0
        return 100.0 * (self.sorting_wait / self.optimal_wait - 1.0)


@dataclass
class Fig14Report:
    points: list[Fig14Point]
    fanout: int
    mean: float
    trials: int
    seed: int


def run_fig14(
    sigmas: tuple[float, ...] = (10.0, 20.0, 30.0, 40.0),
    mean: float = 100.0,
    fanout: int = 4,
    depth: int = 3,
    trials: int = 30,
    seed: int = 2000,
) -> Fig14Report:
    """Reproduce the Fig. 14 sweep."""
    rng = np.random.default_rng(seed)
    leaf_count = fanout ** (depth - 1)
    points = []
    for sigma in sigmas:
        optimal_sum = 0.0
        sorting_sum = 0.0
        for _ in range(trials):
            weights = normal_weights(rng, leaf_count, mean=mean, sigma=sigma)
            tree = balanced_tree(fanout, depth=depth, weights=weights)
            optimal_sum += solve(tree, channels=1).cost
            sorting_sum += sorting_broadcast(tree).data_wait()
        points.append(
            Fig14Point(
                sigma=sigma,
                optimal_wait=optimal_sum / trials,
                sorting_wait=sorting_sum / trials,
            )
        )
    return Fig14Report(
        points=points, fanout=fanout, mean=mean, trials=trials, seed=seed
    )


def format_fig14(report: Fig14Report) -> str:
    headers = ["sigma", "Optimal wait", "Sorting wait", "gap %"]
    rows = [
        [p.sigma, p.optimal_wait, p.sorting_wait, p.gap_percent]
        for p in report.points
    ]
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 14 - Sorting vs Optimal data wait "
            f"(mu={report.mean:g}, m={report.fanout}, "
            f"{report.trials} trials/point, seed={report.seed})"
        ),
        precision=3,
    )
