"""Experiment runner for Table 1 — pruning effects (§4.1).

For full balanced m-ary trees of depth 3 with random data weights, count
the root-to-leaf paths of the reduced data tree under three rule sets
(Property 2 alone; Properties 1+2; Properties 1+2+4) and report the
pruning percentage against the raw ``(m^2)!`` orderings.

Notes versus the paper:

* the 'By Property 2' column is the closed form ``(m^2)!/(m!)^m``; the
  paper's m = 4 entry (6306300) differs from the exact value (63063000)
  by a dropped digit — we print the exact value and cross-check it by an
  independent DP enumeration up to the configured fanout;
* the enumerated columns depend on the (unpublished) random weights, so
  our counts match in magnitude, not digit-for-digit;
* the paper marks entries N/A where enumeration was infeasible; the
  runner's per-column fanout caps reproduce those gaps and are
  configurable for bigger machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counting import Table1Row, table1_row
from ..tree.builders import balanced_tree
from ..workloads.weights import uniform_weights
from .reporting import format_table

__all__ = ["Table1Report", "run_table1", "format_table1"]

# Per-column fanout caps. The memoised DP keeps even the paper's N/A
# entries (m = 5, 6 of the Property-1,2 column) exact and fast, so the
# full paper range is on by default; the caps remain configurable for
# quick runs.
_DEFAULT_MAX_ENUM_P2 = 6
_DEFAULT_MAX_ENUM_P12 = 6
_DEFAULT_MAX_ENUM_P124 = 6


@dataclass
class Table1Report:
    """All rows plus the parameters that produced them."""

    rows: list[Table1Row]
    seed: int
    depth: int = 3


def run_table1(
    fanouts: tuple[int, ...] = (2, 3, 4, 5, 6),
    seed: int = 2000,
    max_enum_p2: int = _DEFAULT_MAX_ENUM_P2,
    max_enum_p12: int = _DEFAULT_MAX_ENUM_P12,
    max_enum_p124: int = _DEFAULT_MAX_ENUM_P124,
) -> Table1Report:
    """Compute Table 1 rows for the given fanouts (depth-3 trees).

    Weights are uniform integers in [1, 100] (the paper says only
    "given randomly"), drawn from a seeded generator per row.
    """
    rows = []
    rng = np.random.default_rng(seed)
    for fanout in fanouts:
        weights = uniform_weights(
            rng, fanout * fanout, low=1.0, high=101.0, integer=True
        )
        tree = balanced_tree(fanout, depth=3, weights=weights)
        rows.append(
            table1_row(
                tree,
                fanout,
                enumerate_p2=fanout <= max_enum_p2,
                enumerate_p12=fanout <= max_enum_p12,
                enumerate_p124=fanout <= max_enum_p124,
            )
        )
    return Table1Report(rows=rows, seed=seed)


def format_table1(report: Table1Report) -> str:
    """Render the report in the paper's Table 1 layout."""
    headers = [
        "m",
        "P2 paths (closed form)",
        "P2 pruning %",
        "P1,2 paths",
        "P1,2 pruning %",
        "P1,2,4 paths",
        "P1,2,4 pruning %",
    ]
    body = []
    for row in report.rows:
        body.append(
            [
                row.fanout,
                row.by_property2,
                row.pruning(row.by_property2),
                row.by_properties_1_2,
                row.pruning(row.by_properties_1_2),
                row.by_properties_1_2_4,
                row.pruning(row.by_properties_1_2_4),
            ]
        )
    return format_table(
        headers,
        body,
        title=(
            f"Table 1 - pruning effects on full balanced m-ary trees of "
            f"depth {report.depth} (seed={report.seed})"
        ),
        precision=4,
    )
