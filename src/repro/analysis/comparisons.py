"""Cross-method comparison sweeps (the ablation benches' engine).

Beyond the paper's two published artifacts, DESIGN.md commits to
ablations of the design choices: how the heuristics and baselines stack
up against the optimum across skew levels, how the data wait scales with
channel count (and where Corollary 1 kicks in), and how much each
pruning rule buys the search. The runners here produce those series;
``benchmarks/`` and the CLI render them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.flat import flat_broadcast_wait
from ..baselines.level_allocation import sv96_channels_needed, sv96_level_schedule
from ..core.candidates import PruningConfig
from ..core.problem import AllocationProblem
from ..core.search import best_first_search
from ..heuristics.local_search import polish_schedule
from ..planners import plan
from ..tree.builders import balanced_tree, random_tree
from ..workloads.weights import normal_weights, zipf_weights
from .reporting import format_table

__all__ = [
    "MethodComparison",
    "compare_methods",
    "format_method_comparison",
    "ChannelScalingPoint",
    "channel_scaling",
    "format_channel_scaling",
    "PruningAblationRow",
    "pruning_ablation",
    "format_pruning_ablation",
    "IntroComparisonRow",
    "intro_comparison",
    "format_intro_comparison",
]


# ---------------------------------------------------------------------------
# Heuristics & baselines vs optimal (single channel)
# ---------------------------------------------------------------------------

@dataclass
class MethodComparison:
    """Average single-channel data wait per method over a tree sample."""

    workload: str
    optimal: float
    sorting: float
    polished: float
    combine: float
    partition: float
    flat: float
    trials: int


def compare_methods(
    rng: np.random.Generator,
    workload: str = "zipf",
    data_count: int = 12,
    trials: int = 20,
) -> MethodComparison:
    """Average data wait of every method over random trees.

    ``workload`` selects the weight distribution: ``"zipf"`` (skewed) or
    ``"normal"`` (the Fig. 14 family).
    """
    sums = {"optimal": 0.0, "sorting": 0.0, "polished": 0.0,
            "combine": 0.0, "partition": 0.0, "flat": 0.0}
    for _ in range(trials):
        tree = random_tree(rng, data_count, max_fanout=4)
        if workload == "zipf":
            weights = zipf_weights(rng, data_count)
        elif workload == "normal":
            weights = normal_weights(rng, data_count)
        else:
            raise ValueError(f"unknown workload {workload!r}")
        for leaf, weight in zip(tree.data_nodes(), weights):
            leaf.weight = weight
        # Every allocation strategy is looked up in the planner
        # registry by name; only the polish post-pass and the no-index
        # baseline fall outside the planner abstraction.
        sums["optimal"] += plan(tree, 1, method="auto").cost
        sorted_schedule = plan(tree, 1, method="sorting").schedule
        sums["sorting"] += sorted_schedule.data_wait()
        sums["polished"] += polish_schedule(sorted_schedule).data_wait()
        sums["combine"] += plan(
            tree, 1, method="shrink-combine", max_data_nodes=8
        ).cost
        sums["partition"] += plan(
            tree, 1, method="shrink-partition", max_data_nodes=8
        ).cost
        sums["flat"] += flat_broadcast_wait(tree)
    return MethodComparison(
        workload=workload,
        optimal=sums["optimal"] / trials,
        sorting=sums["sorting"] / trials,
        polished=sums["polished"] / trials,
        combine=sums["combine"] / trials,
        partition=sums["partition"] / trials,
        flat=sums["flat"] / trials,
        trials=trials,
    )


def format_method_comparison(results: list[MethodComparison]) -> str:
    headers = [
        "workload", "Optimal", "Sorting", "Sorting+polish", "Combine",
        "Partition", "Flat (no index)", "trials",
    ]
    rows = [
        [r.workload, r.optimal, r.sorting, r.polished, r.combine,
         r.partition, r.flat, r.trials]
        for r in results
    ]
    return format_table(
        headers, rows, title="Heuristics and baselines vs Optimal (1 channel)"
    )


# ---------------------------------------------------------------------------
# Channel scaling (and the Corollary 1 regime)
# ---------------------------------------------------------------------------

@dataclass
class ChannelScalingPoint:
    channels: int
    optimal_wait: float
    sorting_wait: float
    sv96_wait: float | None
    corollary1: bool


def channel_scaling(
    rng: np.random.Generator,
    fanout: int = 3,
    depth: int = 3,
    max_channels: int | None = None,
    sigma: float = 30.0,
) -> list[ChannelScalingPoint]:
    """Optimal / Sorting / [SV96] data wait as channels grow.

    [SV96] has a fixed channel demand (one per level), so its single
    figure appears only on the row with that exact channel count —
    precisely the inflexibility §1.1 criticises.
    """
    leaf_count = fanout ** (depth - 1)
    weights = normal_weights(rng, leaf_count, mean=100.0, sigma=sigma)
    tree = balanced_tree(fanout, depth=depth, weights=weights)
    width = tree.max_level_width()
    if max_channels is None:
        max_channels = width + 1
    sv96_need = sv96_channels_needed(tree)
    sv96_wait = sv96_level_schedule(tree).data_wait()

    points = []
    for channels in range(1, max_channels + 1):
        optimal_wait = plan(tree, channels, method="auto").cost
        sorting_wait = plan(tree, channels, method="sorting").cost
        points.append(
            ChannelScalingPoint(
                channels=channels,
                optimal_wait=optimal_wait,
                sorting_wait=sorting_wait,
                sv96_wait=sv96_wait if channels == sv96_need else None,
                corollary1=channels >= width,
            )
        )
    return points


def format_channel_scaling(points: list[ChannelScalingPoint]) -> str:
    headers = ["k", "Optimal", "Sorting", "SV96 (needs k=depth)", "Corollary 1"]
    rows = [
        [p.channels, p.optimal_wait, p.sorting_wait, p.sv96_wait,
         "yes" if p.corollary1 else ""]
        for p in points
    ]
    return format_table(headers, rows, title="Data wait vs channel count")


# ---------------------------------------------------------------------------
# Pruning-rule ablation (search effort)
# ---------------------------------------------------------------------------

@dataclass
class PruningAblationRow:
    label: str
    nodes_expanded: int
    cost: float


def pruning_ablation(
    rng: np.random.Generator,
    data_count: int = 7,
    channels: int = 2,
    bound: str = "packed",
) -> list[PruningAblationRow]:
    """Best-first effort under cumulative §3.2 rule sets (one tree)."""
    tree = random_tree(rng, data_count, max_fanout=3)
    problem = AllocationProblem(tree, channels=channels)
    configs = [
        ("no pruning (Algorithm 1)", PruningConfig.none()),
        ("+ Property 1", PruningConfig.none().without(forced_completion=True)),
        (
            "+ candidate filter (P2/P3)",
            PruningConfig.none().without(
                forced_completion=True, candidate_filter=True
            ),
        ),
        (
            "+ subset rules",
            PruningConfig.none().without(
                forced_completion=True, candidate_filter=True, subset_rules=True
            ),
        ),
        ("+ swap filter (full paper)", PruningConfig.paper()),
    ]
    rows = []
    for label, config in configs:
        result = best_first_search(problem, pruning=config, bound=bound)
        rows.append(
            PruningAblationRow(
                label=label,
                nodes_expanded=result.nodes_expanded,
                cost=result.cost,
            )
        )
    return rows


def format_pruning_ablation(rows: list[PruningAblationRow]) -> str:
    headers = ["rule set", "nodes expanded", "optimal wait"]
    body = [[r.label, r.nodes_expanded, r.cost] for r in rows]
    return format_table(
        headers, body, title="Pruning ablation (best-first search effort)"
    )


# ---------------------------------------------------------------------------
# The §1 two-camps comparison: replication vs indexing
# ---------------------------------------------------------------------------

@dataclass
class IntroComparisonRow:
    """One access/tuning trade-off row of the §1 comparison."""

    scheme: str
    expected_wait: float
    expected_tuning: float | None  # None = no doze support (no index)


def intro_comparison(
    rng: np.random.Generator,
    data_count: int = 12,
    theta: float = 1.2,
    fanout: int = 3,
) -> list[IntroComparisonRow]:
    """Compare the paper's two prior-art camps on one Zipf workload.

    * flat cycle (no replication, no index) — the strawman;
    * [Ach95] Broadcast Disks — replication lowers the *wait* for hot
      items but, with no index, the receiver listens continuously
      (tuning time = access time);
    * the paper's approach — an alphabetic index adds wait (index
      buckets take airtime) but lets the receiver doze.
    """
    from ..baselines.broadcast_disks import (
        broadcast_disk_cycle,
        expected_wait_flat,
        expected_wait_of_cycle,
        partition_into_disks,
    )
    from ..broadcast.metrics import expected_tuning_time
    from ..tree.alphabetic import optimal_alphabetic_tree
    from ..tree.builders import data_labels
    from ..workloads.weights import zipf_weights

    weights = zipf_weights(rng, data_count, theta=theta, shuffle=False)
    labels = data_labels(data_count)
    items_tree = optimal_alphabetic_tree(labels, weights, fanout=fanout)
    leaves = items_tree.data_nodes()

    rows = [
        IntroComparisonRow(
            "flat cycle (no index, no replication)",
            expected_wait_flat(leaves),
            None,
        )
    ]
    layout = partition_into_disks(
        leaves, num_disks=min(3, data_count), relative_frequencies=None
    )
    rows.append(
        IntroComparisonRow(
            "[Ach95] broadcast disks (replication)",
            expected_wait_of_cycle(broadcast_disk_cycle(layout)),
            None,
        )
    )
    optimal = plan(items_tree, 1, method="auto")
    rows.append(
        IntroComparisonRow(
            "indexed optimum (this paper)",
            optimal.cost,
            expected_tuning_time(optimal.schedule),
        )
    )
    from ..baselines.signatures import build_signature_broadcast

    signature_stats = build_signature_broadcast(
        leaves
    ).weighted_lookup_stats()
    rows.append(
        IntroComparisonRow(
            "[LL96] simple signatures (filtering)",
            signature_stats["access_time"],
            signature_stats["tuning_time"],
        )
    )
    return rows


def format_intro_comparison(rows: list[IntroComparisonRow]) -> str:
    body = [
        [
            row.scheme,
            row.expected_wait,
            row.expected_tuning
            if row.expected_tuning is not None
            else "= wait (no doze)",
        ]
        for row in rows
    ]
    return format_table(
        ["scheme", "expected wait (slots)", "tuning (buckets)"],
        body,
        title="The §1 trade-off: replication lowers waits, indexing lowers tuning",
    )
