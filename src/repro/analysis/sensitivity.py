"""Sensitivity sweeps over the system's design knobs.

Two questions the paper's system leaves to the deployer, answered
empirically here:

* **Fanout** (:func:`fanout_sensitivity`): [SV96] sizes the index-tree
  fanout to the wireless packet; a wider fanout shortens root paths
  (fewer index probes → lower tuning time) but coarsens the skew the
  tree can express and demands bigger buckets. The sweep reports, per
  fanout: bucket bytes needed, data wait of the optimal/heuristic
  allocation, expected access and tuning time.
* **Skew** (:func:`skew_sensitivity`): how the optimal data wait, the
  heuristic gap and the value of indexing change as Zipf skew grows —
  the broadcast-disk regime ([Ach95]) the paper's motivation lives in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.flat import flat_broadcast_wait
from ..broadcast.metrics import expected_access_time, expected_tuning_time
from ..core.optimal import solve
from ..exceptions import SearchBudgetExceeded
from ..heuristics.channel_allocation import sorting_schedule
from ..io.wire import index_bucket_size
from ..tree.alphabetic import optimal_alphabetic_tree
from ..workloads.catalogs import CatalogItem
from ..workloads.weights import zipf_weights
from .reporting import format_table

__all__ = [
    "FanoutPoint",
    "fanout_sensitivity",
    "format_fanout_sensitivity",
    "SkewPoint",
    "skew_sensitivity",
    "format_skew_sensitivity",
]

_EXACT_BUDGET = 300_000


@dataclass
class FanoutPoint:
    fanout: int
    bucket_bytes: int
    tree_depth: int
    data_wait: float
    access_time: float
    tuning_time: float
    exact: bool


def _allocate(tree, channels: int):
    """Exact when affordable, sorting heuristic otherwise."""
    try:
        return solve(tree, channels=channels, budget=_EXACT_BUDGET).schedule, True
    except SearchBudgetExceeded:
        return sorting_schedule(tree, channels), False


def fanout_sensitivity(
    items: list[CatalogItem],
    fanouts: tuple[int, ...] = (2, 3, 4, 6, 8),
    channels: int = 1,
) -> list[FanoutPoint]:
    """Sweep the alphabetic-tree fanout over a fixed catalog."""
    labels = [item.label for item in items]
    weights = [item.weight for item in items]
    keys = [item.key for item in items]
    points = []
    for fanout in fanouts:
        tree = optimal_alphabetic_tree(labels, weights, fanout=fanout, keys=keys)
        schedule, exact = _allocate(tree, channels)
        points.append(
            FanoutPoint(
                fanout=fanout,
                bucket_bytes=index_bucket_size(fanout),
                tree_depth=tree.depth(),
                data_wait=schedule.data_wait(),
                access_time=expected_access_time(schedule),
                tuning_time=expected_tuning_time(schedule),
                exact=exact,
            )
        )
    return points


def format_fanout_sensitivity(points: list[FanoutPoint]) -> str:
    rows = [
        [
            p.fanout,
            p.bucket_bytes,
            p.tree_depth,
            p.data_wait,
            p.access_time,
            p.tuning_time,
            "exact" if p.exact else "heuristic",
        ]
        for p in points
    ]
    return format_table(
        [
            "fanout",
            "bucket bytes",
            "depth",
            "data wait",
            "access",
            "tuning",
            "solver",
        ],
        rows,
        title="Fanout sensitivity: packet size vs tuning vs wait",
    )


@dataclass
class SkewPoint:
    theta: float
    optimal_wait: float
    sorting_wait: float
    flat_wait: float

    @property
    def heuristic_gap_percent(self) -> float:
        if self.optimal_wait == 0:
            return 0.0
        return 100.0 * (self.sorting_wait / self.optimal_wait - 1.0)

    @property
    def index_overhead_percent(self) -> float:
        """Extra wait the index costs over the raw data floor."""
        if self.flat_wait == 0:
            return 0.0
        return 100.0 * (self.optimal_wait / self.flat_wait - 1.0)


def skew_sensitivity(
    rng: np.random.Generator,
    thetas: tuple[float, ...] = (0.0, 0.5, 0.95, 1.3, 1.8),
    data_count: int = 12,
    trials: int = 10,
    fanout: int = 3,
) -> list[SkewPoint]:
    """Sweep Zipf skew over alphabetic trees of a fixed catalog size."""
    from ..tree.builders import data_labels

    labels = data_labels(data_count)
    points = []
    for theta in thetas:
        optimal_sum = sorting_sum = flat_sum = 0.0
        for _ in range(trials):
            weights = zipf_weights(rng, data_count, theta=theta)
            tree = optimal_alphabetic_tree(labels, weights, fanout=fanout)
            optimal_sum += solve(tree, channels=1).cost
            sorting_sum += sorting_schedule(tree, 1).data_wait()
            flat_sum += flat_broadcast_wait(tree)
        points.append(
            SkewPoint(
                theta=theta,
                optimal_wait=optimal_sum / trials,
                sorting_wait=sorting_sum / trials,
                flat_wait=flat_sum / trials,
            )
        )
    return points


def format_skew_sensitivity(points: list[SkewPoint]) -> str:
    rows = [
        [
            p.theta,
            p.optimal_wait,
            p.sorting_wait,
            p.heuristic_gap_percent,
            p.flat_wait,
            p.index_overhead_percent,
        ]
        for p in points
    ]
    return format_table(
        [
            "zipf theta",
            "optimal",
            "sorting",
            "gap %",
            "flat floor",
            "index overhead %",
        ],
        rows,
        title="Skew sensitivity (1 channel, alphabetic index)",
    )
