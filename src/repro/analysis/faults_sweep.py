"""Loss-sweep experiment: how plans degrade on unreliable channels.

The paper's model assumes a perfect broadcast medium; the robustness
layer (:mod:`repro.faults` + the recovery-aware client walk) lets us ask
the natural follow-up: *when buckets start dropping, do the optimal
plans keep their edge over the heuristics?* This runner sweeps the
per-channel loss probability for a panel of registry planners
(:mod:`repro.planners`) over one seeded random-tree workload and
reports, per (planner, loss) point, the measured mean access time,
tuning time and the fault economy (retries, wasted probes, abandoned
walks).

The sweep's first column doubles as a correctness gate. At ``loss=0``
the recovery-aware walk must reproduce the plain lossless protocol
**bit-identically** — same access time, same tuning time, for *every*
(target, tune slot) pair, exhaustively enumerated. The report carries
that differential check's outcome per planner; the CLI ``faults``
subcommand exits non-zero when any of them fails.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..broadcast.pointers import compile_program
from ..client.protocol import (
    RecoveryPolicy,
    object_walk,
    recovering_walk,
)
from ..client.simulator import simulate_workload
from ..faults import BurstConfig, FaultConfig
from ..planners import plan
from ..tree.builders import random_tree
from ..workloads.weights import zipf_weights
from .reporting import format_table

__all__ = [
    "FaultSweepPoint",
    "DifferentialCheck",
    "FaultSweepReport",
    "run_fault_sweep",
    "format_fault_sweep",
]

DEFAULT_METHODS = ("auto", "sorting", "sv96")
DEFAULT_LOSSES = (0.0, 0.05, 0.1, 0.2, 0.3)


@dataclass
class FaultSweepPoint:
    """Measured behaviour of one planner at one loss probability."""

    method: str
    loss: float
    plan_cost: float
    mean_access_time: float
    mean_tuning_time: float
    requests: int
    abandoned: int
    lost_buckets: int
    corrupt_buckets: int
    retries: int
    wasted_probes: int


@dataclass
class DifferentialCheck:
    """Outcome of the exhaustive ``loss=0`` equivalence check.

    ``pairs`` is the number of (target, tune slot) combinations
    enumerated; ``mismatches`` must be zero for the invariant to hold.
    """

    method: str
    pairs: int
    mismatches: int

    @property
    def ok(self) -> bool:
        return self.mismatches == 0


@dataclass
class FaultSweepReport:
    """Everything the ``faults`` experiment produced."""

    points: list[FaultSweepPoint] = field(default_factory=list)
    differentials: list[DifferentialCheck] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    @property
    def differential_ok(self) -> bool:
        return all(check.ok for check in self.differentials)

    def to_dict(self) -> dict:
        """JSON-ready view (the CLI ``--json`` payload)."""
        return {
            "config": self.config,
            "differential_ok": self.differential_ok,
            "differentials": [asdict(c) for c in self.differentials],
            "points": [asdict(p) for p in self.points],
        }


def _differential_check(method: str, program) -> DifferentialCheck:
    """Exhaustively compare recovered-at-p=0 against the lossless walk."""
    lossless_air = FaultConfig(loss=0.0)
    cycle = program.cycle_length
    pairs = 0
    mismatches = 0
    for target in program.schedule.tree.data_nodes():
        for tune_slot in range(1, cycle + 1):
            pairs += 1
            base = object_walk(program, target, tune_slot)
            recovered = recovering_walk(
                program, target, tune_slot, faults=lossless_air
            )
            if (
                base.access_time != recovered.access_time
                or base.tuning_time != recovered.tuning_time
                or base.probe_wait != recovered.probe_wait
                or base.data_wait != recovered.data_wait
                or base.channel_switches != recovered.channel_switches
            ):
                mismatches += 1
    return DifferentialCheck(method=method, pairs=pairs, mismatches=mismatches)


def run_fault_sweep(
    *,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    losses: tuple[float, ...] = DEFAULT_LOSSES,
    channels: int = 2,
    data_count: int = 12,
    requests: int = 500,
    seed: int = 2000,
    corruption: float = 0.0,
    burst: bool = False,
    policy: RecoveryPolicy | None = None,
) -> FaultSweepReport:
    """Sweep loss probability × planner over one seeded workload.

    One Zipf-weighted random tree (drawn from ``seed``) is planned by
    every registry ``method``; each plan is then simulated at every
    ``loss`` probability with an independent, loss-indexed fault seed —
    so the loss axis varies only the channel, never the workload. With
    ``burst`` the losses arrive in Gilbert–Elliott bursts around the
    same average rate instead of i.i.d.
    """
    rng = np.random.default_rng(seed)
    tree = random_tree(rng, data_count, max_fanout=4)
    for leaf, weight in zip(
        tree.data_nodes(), zipf_weights(rng, data_count)
    ):
        leaf.weight = weight

    report = FaultSweepReport(
        config={
            "methods": list(methods),
            "losses": list(losses),
            "channels": channels,
            "data_count": data_count,
            "requests": requests,
            "seed": seed,
            "corruption": corruption,
            "burst": burst,
            "policy": (policy or RecoveryPolicy()).mode,
            "max_cycles": (policy or RecoveryPolicy()).max_cycles,
        }
    )
    for method in methods:
        result = plan(tree, channels, method=method)
        program = compile_program(result.schedule)
        report.differentials.append(_differential_check(method, program))
        for loss_index, loss in enumerate(losses):
            faults = FaultConfig(
                loss=loss,
                corruption=corruption if loss > 0 else 0.0,
                burst=BurstConfig() if burst and loss > 0 else None,
                seed=seed + loss_index,
            )
            summary = simulate_workload(
                program,
                rng=np.random.default_rng(seed),
                requests=requests,
                faults=faults,
                recovery=policy,
            )
            report.points.append(
                FaultSweepPoint(
                    method=method,
                    loss=loss,
                    plan_cost=result.cost,
                    mean_access_time=summary.mean_access_time,
                    mean_tuning_time=summary.mean_tuning_time,
                    requests=summary.requests,
                    abandoned=summary.abandoned,
                    lost_buckets=summary.lost_buckets,
                    corrupt_buckets=summary.corrupt_buckets,
                    retries=summary.retries,
                    wasted_probes=summary.wasted_probes,
                )
            )
    return report


def format_fault_sweep(report: FaultSweepReport) -> str:
    headers = [
        "planner", "loss", "access", "tuning", "retries",
        "wasted probes", "abandoned",
    ]
    rows = [
        [
            p.method, p.loss, p.mean_access_time, p.mean_tuning_time,
            p.retries, p.wasted_probes, p.abandoned,
        ]
        for p in report.points
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Mean access/tuning time vs per-channel bucket loss "
            f"({report.config.get('channels', '?')} channels, "
            f"policy: {report.config.get('policy', '?')})"
        ),
    )
    checks = ", ".join(
        f"{c.method}: {'ok' if c.ok else f'{c.mismatches} MISMATCHES'}"
        f" ({c.pairs} pairs)"
        for c in report.differentials
    )
    verdict = "PASS" if report.differential_ok else "FAIL"
    return (
        f"{table}\n\nloss=0 differential vs lossless protocol: "
        f"{verdict} [{checks}]"
    )
