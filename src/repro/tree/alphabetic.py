"""Alphabetic (order-preserving) index-tree construction.

The paper adopts the *Alphabetic Huffman tree* of Hu and Tucker [HT71] —
extended to k-nary search trees in [SV96] — as its index structure (§1):
a tree whose leaves stay in search-key order (so key lookup works, unlike a
plain Huffman tree) while popular leaves sit closer to the root, minimising
the expected number of index probes (average tuning time).

Three constructions are provided:

* :func:`hu_tucker_levels` / :func:`hu_tucker_tree` — the classic
  Hu–Tucker algorithm for binary alphabetic trees: a combination phase
  over *compatible pairs* computes optimal leaf levels; a
  reconstruction phase rebuilds an order-preserving tree with exactly
  those levels. (This straightforward realisation scans pairs each
  merge, so it is cubic; fine up to ~100 leaves.)
* :func:`garsia_wachs_levels` / :func:`garsia_wachs_tree` — the
  Garsia–Wachs algorithm, provably cost-equivalent and far faster (the
  list-based realisation here is quadratic); the builder of choice for
  large catalogs.
* :func:`optimal_alphabetic_tree` — an exact interval dynamic program for
  any fanout k >= 2 (the [SV96] k-nary extension; a tree node then fits a
  wireless packet holding k pointers). O(n^3 · k); intended for the
  catalog sizes of the paper's experiments.

All return trees whose expected leaf depth is minimal among alphabetic
trees of the given fanout, which the test suite verifies by brute force
on small inputs and by cross-validating the constructions against each
other on random ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .index_tree import IndexTree
from .node import DataNode, IndexNode, Node

__all__ = [
    "hu_tucker_levels",
    "hu_tucker_tree",
    "garsia_wachs_levels",
    "garsia_wachs_tree",
    "optimal_alphabetic_tree",
    "weight_balanced_tree",
    "build_index",
    "alphabetic_cost",
]


def alphabetic_cost(tree: IndexTree) -> float:
    """Weighted external path length: ``sum W(leaf) * edge_depth(leaf)``.

    This is the quantity an alphabetic Huffman tree minimises — it is
    proportional to the average tuning time of the index (§1).
    """
    return sum(
        leaf.weight * (leaf.depth() - 1) for leaf in tree.data_nodes()
    )


def hu_tucker_levels(weights: Sequence[float]) -> list[int]:
    """Optimal binary alphabetic-tree leaf levels for ``weights``.

    Implements the combination phase of Hu–Tucker [HT71]: repeatedly merge
    the *minimum compatible pair* — two work-list items with no leaf
    strictly between them, minimising combined weight with ties broken by
    leftmost position — until one item remains. The number of merges each
    original leaf participates in is its level (edge depth) in an optimal
    alphabetic tree.
    """
    count = len(weights)
    if count == 0:
        raise ValueError("weights must be non-empty")
    if count == 1:
        return [0]

    # Work list entries: [weight, is_leaf, leaf_indices]
    work: list[list] = [[float(w), True, [i]] for i, w in enumerate(weights)]
    levels = [0] * count

    while len(work) > 1:
        best: tuple[float, int, int] | None = None
        for left in range(len(work) - 1):
            for right in range(left + 1, len(work)):
                # Compatible: no *leaf* strictly between positions left, right.
                if right > left + 1 and any(
                    work[mid][1] for mid in range(left + 1, right)
                ):
                    # A leaf blocks this pair and everything beyond it.
                    break
                combined = work[left][0] + work[right][0]
                candidate = (combined, left, right)
                if best is None or candidate < best:
                    best = candidate
        assert best is not None
        _, left, right = best
        merged_leaves = work[left][2] + work[right][2]
        for leaf in merged_leaves:
            levels[leaf] += 1
        work[left] = [work[left][0] + work[right][0], False, merged_leaves]
        del work[right]
    return levels


def _tree_from_levels(
    labels: Sequence[str],
    weights: Sequence[float],
    levels: Sequence[int],
    keys: Sequence[object] | None,
) -> IndexTree:
    """Reconstruction phase: build an alphabetic tree with given leaf levels.

    Scans leaves left to right with a stack, merging the top two entries
    whenever they sit at the same level. Valid Hu–Tucker level sequences
    always reduce to a single level-0 root.
    """
    stack: list[tuple[int, Node]] = []
    for position, level in enumerate(levels):
        key = keys[position] if keys is not None else None
        node: Node = DataNode(labels[position], weights[position], key=key)
        stack.append((level, node))
        while len(stack) >= 2 and stack[-1][0] == stack[-2][0]:
            level_top, right = stack.pop()
            _, left = stack.pop()
            stack.append((level_top - 1, IndexNode("", [left, right])))
    if len(stack) != 1 or stack[0][0] != 0:
        raise ValueError(f"invalid alphabetic level sequence: {list(levels)}")
    root = stack[0][1]
    if isinstance(root, DataNode):
        root = IndexNode("", [root])
    return IndexTree(root)


def hu_tucker_tree(
    labels: Sequence[str],
    weights: Sequence[float],
    keys: Sequence[object] | None = None,
) -> IndexTree:
    """Optimal binary alphabetic (Hu–Tucker) index tree.

    Leaves appear left to right in the order given, so an in-order walk
    preserves key order and the tree functions as a binary search tree —
    the property plain Huffman trees lack (§1).
    """
    if len(labels) != len(weights):
        raise ValueError("labels and weights must have equal length")
    levels = hu_tucker_levels(weights)
    return _tree_from_levels(labels, weights, levels, keys)


def optimal_alphabetic_tree(
    labels: Sequence[str],
    weights: Sequence[float],
    fanout: int = 2,
    keys: Sequence[object] | None = None,
) -> IndexTree:
    """Exact optimal alphabetic tree with node fanout at most ``fanout``.

    Interval dynamic program: ``g(i, j)`` is the minimal weighted external
    path length of an alphabetic tree over leaves ``i..j``; its root splits
    the interval into between 2 and ``fanout`` contiguous parts, each part
    either a single leaf (depth 1 below the root) or a recursively optimal
    subtree. Every level of nesting adds ``W(i, j)`` once, which is how the
    recurrence charges depth.

    This realises the [SV96] k-nary extension exactly (at O(n^3·k) cost),
    so a tree node can be sized to fit a wireless packet of any capacity.
    """
    if len(labels) != len(weights):
        raise ValueError("labels and weights must have equal length")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    count = len(labels)
    if count == 0:
        raise ValueError("weights must be non-empty")
    if count == 1:
        root = IndexNode(
            "", [DataNode(labels[0], weights[0], key=keys[0] if keys else None)]
        )
        return IndexTree(root)

    prefix = [0.0]
    for weight in weights:
        prefix.append(prefix[-1] + float(weight))

    def interval_weight(i: int, j: int) -> float:
        return prefix[j + 1] - prefix[i]

    @lru_cache(maxsize=None)
    def subtree_cost(i: int, j: int) -> float:
        """Cost of the best alphabetic tree over leaves i..j (i < j)."""
        return interval_weight(i, j) + split_cost(i, j, fanout)

    def part_cost(i: int, j: int) -> float:
        """Cost of leaves i..j used as one child slot of some root."""
        return 0.0 if i == j else subtree_cost(i, j)

    @lru_cache(maxsize=None)
    def split_cost(i: int, j: int, parts: int) -> float:
        """Min total part cost splitting i..j into 2..``parts`` pieces."""
        if i == j:
            return 0.0
        if parts == 1:
            return part_cost(i, j)
        best = float("inf")
        for cut in range(i, j):
            candidate = part_cost(i, cut) + split_cost(cut + 1, j, parts - 1)
            if candidate < best:
                best = candidate
        if parts > 2:
            # Fewer pieces may be cheaper (split_cost(parts-1) already
            # covers >=2 pieces when parts-1 >= 2).
            best = min(best, split_cost(i, j, parts - 1))
        return best

    def make_leaf(position: int) -> DataNode:
        key = keys[position] if keys is not None else None
        return DataNode(labels[position], weights[position], key=key)

    def build_parts(i: int, j: int, parts: int) -> list[Node]:
        """Recover the optimal partition of i..j into at most ``parts``."""
        if parts == 1 or i == j:
            return [build_subtree(i, j)]
        target = split_cost(i, j, parts)
        if parts > 2 and abs(split_cost(i, j, parts - 1) - target) < 1e-9:
            return build_parts(i, j, parts - 1)
        for cut in range(i, j):
            left = part_cost(i, cut)
            right = split_cost(cut + 1, j, parts - 1)
            if abs(left + right - target) < 1e-9:
                return [build_subtree(i, cut)] + build_parts(
                    cut + 1, j, parts - 1
                )
        raise AssertionError("dynamic program reconstruction failed")

    def build_subtree(i: int, j: int) -> Node:
        if i == j:
            return make_leaf(i)
        return IndexNode("", build_parts(i, j, fanout))

    root = build_subtree(0, count - 1)
    if isinstance(root, DataNode):  # pragma: no cover - count == 1 handled above
        root = IndexNode("", [root])
    return IndexTree(root)


def garsia_wachs_levels(weights: Sequence[float]) -> list[int]:
    """Optimal binary alphabetic-tree leaf levels via Garsia–Wachs.

    The Garsia–Wachs algorithm computes the same optimal levels as
    Hu–Tucker with a simpler combination phase: repeatedly find the
    leftmost position where the left neighbour is no heavier than the
    right neighbour (``w[i-1] <= w[i+1]`` with infinite sentinels),
    merge the pair at that position, and re-insert the merged item just
    after the nearest heavier item to its left. The test suite verifies
    cost-equality with :func:`hu_tucker_levels` and the interval DP.

    This simple list-based realisation is O(n^2); the classic paper
    gets O(n log n) with balanced trees, unnecessary at broadcast
    catalog sizes.
    """
    count = len(weights)
    if count == 0:
        raise ValueError("weights must be non-empty")
    if count == 1:
        return [0]

    infinity = float("inf")
    # Work items: [weight, leaf_indices]; sentinels carry no leaves.
    work: list[list] = (
        [[infinity, []]]
        + [[float(w), [i]] for i, w in enumerate(weights)]
        + [[infinity, []]]
    )
    levels = [0] * count

    while len(work) > 3:
        # Leftmost i with work[i-1].weight <= work[i+1].weight, scanning
        # the real items (positions 1..len-2).
        position = next(
            i
            for i in range(1, len(work) - 1)
            if work[i - 1][0] <= work[i + 1][0]
        )
        merged_weight = work[position - 1][0] + work[position][0]
        merged_leaves = work[position - 1][1] + work[position][1]
        for leaf in merged_leaves:
            levels[leaf] += 1
        del work[position - 1:position + 1]
        # Re-insert immediately to the right of the nearest left item of
        # weight >= the merged weight (the left sentinel guarantees one).
        # The tie handling matters: inserting past equal-weight items
        # (strict >) can produce level sequences with no alphabetic
        # realisation — verified empirically in the test suite.
        insert_after = max(
            j for j in range(position - 1) if work[j][0] >= merged_weight
        )
        work.insert(insert_after + 1, [merged_weight, merged_leaves])
    return levels


def garsia_wachs_tree(
    labels: Sequence[str],
    weights: Sequence[float],
    keys: Sequence[object] | None = None,
) -> IndexTree:
    """Optimal binary alphabetic tree via Garsia–Wachs levels.

    Produces a tree with the same (optimal) cost as
    :func:`hu_tucker_tree`; the shapes may differ when several optimal
    trees exist.
    """
    if len(labels) != len(weights):
        raise ValueError("labels and weights must have equal length")
    levels = garsia_wachs_levels(weights)
    return _tree_from_levels(labels, weights, levels, keys)


def weight_balanced_tree(
    labels: Sequence[str],
    weights: Sequence[float],
    fanout: int = 2,
    keys: Sequence[object] | None = None,
) -> IndexTree:
    """Near-optimal k-ary alphabetic tree by recursive weight balancing.

    The exact k-ary DP (:func:`optimal_alphabetic_tree`) is cubic; for
    catalogs in the hundreds-to-thousands this greedy does the classic
    thing instead: split the leaf interval into ``fanout`` contiguous
    parts of (near) equal total weight and recurse. Weight balancing is
    the standard logarithmic-cost approximation for alphabetic trees;
    the test suite bounds its gap against the exact DP empirically.
    Runs in O(n log n)-ish time.
    """
    if len(labels) != len(weights):
        raise ValueError("labels and weights must have equal length")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    count = len(labels)
    if count == 0:
        raise ValueError("weights must be non-empty")

    prefix = [0.0]
    for weight in weights:
        prefix.append(prefix[-1] + float(weight))

    def make_leaf(position: int) -> DataNode:
        key = keys[position] if keys is not None else None
        return DataNode(labels[position], weights[position], key=key)

    def build(i: int, j: int) -> Node:
        size = j - i + 1
        if size == 1:
            return make_leaf(i)
        if size <= fanout:
            return IndexNode("", [make_leaf(p) for p in range(i, j + 1)])
        children: list[Node] = []
        start = i
        for part in range(fanout):
            remaining_parts = fanout - part
            if j - start + 1 <= remaining_parts:
                # Just enough leaves left: one per remaining slot.
                children.extend(make_leaf(p) for p in range(start, j + 1))
                start = j + 1
                break
            if part == fanout - 1:
                end = j
            else:
                # Greedy boundary: closest prefix point to the ideal
                # equal-weight cut of what is *left* (re-balancing after
                # earlier cuts), keeping >= 1 leaf per side and enough
                # leaves for the remaining parts.
                remaining_weight = prefix[j + 1] - prefix[start]
                ideal = prefix[start] + remaining_weight / remaining_parts
                lo = start
                hi = j - (remaining_parts - 1)
                end = lo
                best_gap = float("inf")
                for candidate in range(lo, hi + 1):
                    gap = abs(prefix[candidate + 1] - ideal)
                    if gap < best_gap:
                        best_gap = gap
                        end = candidate
            children.append(build(start, end))
            start = end + 1
            if start > j:
                break
        return IndexNode("", children)

    root = build(0, count - 1)
    if isinstance(root, DataNode):
        root = IndexNode("", [root])
    return IndexTree(root)


def build_index(
    labels: Sequence[str],
    weights: Sequence[float],
    fanout: int = 2,
    keys: Sequence[object] | None = None,
    exact_threshold: int = 120,
) -> IndexTree:
    """Pick the right alphabetic construction for the catalog size.

    * fanout 2 → Garsia–Wachs (exact, fast at any size);
    * fanout > 2 and ``len(labels) <= exact_threshold`` → the exact
      interval DP;
    * otherwise → recursive weight balancing (near-optimal, scalable).
    """
    if fanout == 2:
        return garsia_wachs_tree(labels, weights, keys=keys)
    if len(labels) <= exact_threshold:
        return optimal_alphabetic_tree(labels, weights, fanout=fanout, keys=keys)
    return weight_balanced_tree(labels, weights, fanout=fanout, keys=keys)
