"""The :class:`IndexTree` container.

Wraps a root :class:`~repro.tree.node.Node` and provides the traversals,
lookups and derived quantities the scheduler needs: preorder numbering of
index nodes (§3.2), per-node ancestor sets (§3.3 ``Ancestor(D_i)``), level
decomposition (Corollary 1), subtree weights (the §4.2 sorting comparator)
and structural validation.

The tree is deliberately a thin, explicit object — the search code in
``repro.core`` treats nodes as opaque partially-ordered jobs, exactly as the
paper's Personnel Assignment transformation does.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..exceptions import TreeError
from .node import DataNode, IndexNode, Node

__all__ = ["IndexTree"]


class IndexTree:
    """A rooted index tree of index (internal) and data (leaf) nodes.

    Parameters
    ----------
    root:
        The root node. Usually an :class:`IndexNode`; a bare
        :class:`DataNode` is allowed (a degenerate one-item broadcast).
    renumber:
        When true (default), assign preorder numbers to index nodes and, if
        an index node has an empty label, label it with its number — the
        paper's Fig. 1 convention.
    validate:
        When true (default), check structural invariants immediately.
    """

    def __init__(self, root: Node, renumber: bool = True, validate: bool = True) -> None:
        self.root = root
        if renumber:
            self.renumber()
        if validate:
            self.validate()

    # -- traversals ----------------------------------------------------------
    def preorder(self) -> Iterator[Node]:
        """Yield all nodes in preorder (parent before children, left to right)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, IndexNode):
                stack.extend(reversed(node.children))

    def postorder(self) -> Iterator[Node]:
        """Yield all nodes in postorder (children before parent)."""
        result: list[Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            result.append(node)
            if isinstance(node, IndexNode):
                stack.extend(node.children)
        return reversed(result)

    def nodes(self) -> list[Node]:
        """All nodes in preorder, as a list."""
        return list(self.preorder())

    def index_nodes(self) -> list[IndexNode]:
        """All index nodes in preorder."""
        return [n for n in self.preorder() if isinstance(n, IndexNode)]

    def data_nodes(self) -> list[DataNode]:
        """All data nodes in preorder (left-to-right leaf order)."""
        return [n for n in self.preorder() if isinstance(n, DataNode)]

    def levels(self) -> list[list[Node]]:
        """Nodes grouped by depth: ``levels()[0]`` is ``[root]``."""
        result: list[list[Node]] = []
        frontier: list[Node] = [self.root]
        while frontier:
            result.append(frontier)
            next_frontier: list[Node] = []
            for node in frontier:
                if isinstance(node, IndexNode):
                    next_frontier.extend(node.children)
            frontier = next_frontier
        return result

    # -- derived quantities ----------------------------------------------------
    def depth(self) -> int:
        """Tree depth counting the root as level 1 (paper convention)."""
        return len(self.levels())

    def max_level_width(self) -> int:
        """The maximal number of nodes on any one level (Corollary 1 bound)."""
        return max(len(level) for level in self.levels())

    def fanout(self) -> int:
        """The maximal number of children of any index node (0 if none)."""
        widths = [len(n.children) for n in self.index_nodes()]
        return max(widths, default=0)

    def total_weight(self) -> float:
        """Sum of all data-node weights, the denominator of formula (1)."""
        return sum(d.weight for d in self.data_nodes())

    def subtree_data_weight(self, node: Node) -> float:
        """Sum of data weights in the subtree rooted at ``node``."""
        if isinstance(node, DataNode):
            return node.weight
        total = 0.0
        stack: list[Node] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, DataNode):
                total += current.weight
            else:
                stack.extend(current.children)  # type: ignore[union-attr]
        return total

    def subtree_size(self, node: Node) -> int:
        """Number of nodes (index + data) in the subtree rooted at ``node``."""
        count = 0
        stack: list[Node] = [node]
        while stack:
            current = stack.pop()
            count += 1
            if isinstance(current, IndexNode):
                stack.extend(current.children)
        return count

    def ancestors_of(self, node: Node) -> list[IndexNode]:
        """``Ancestor(node)``: proper ancestors, root first (paper §3.3)."""
        chain = list(node.ancestors())
        chain.reverse()
        return chain

    # -- bookkeeping -------------------------------------------------------------
    def renumber(self) -> None:
        """Assign preorder order-numbers ``1..m`` to index nodes (§3.2).

        Index nodes with empty labels are given their number as label,
        matching the paper's figures.
        """
        counter = 0
        for node in self.preorder():
            if isinstance(node, IndexNode):
                counter += 1
                node.order = counter
                if not node.label:
                    node.label = str(counter)

    def find(self, label: str) -> Node:
        """Return the first preorder node with the given ``label``.

        Raises :class:`KeyError` if absent. Convenient in tests and
        examples; production callers hold node references directly.
        """
        for node in self.preorder():
            if node.label == label:
                return node
        raise KeyError(label)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TreeError` on failure.

        Invariants (§2.1): the node graph is a rooted tree (each node
        reachable exactly once, parent pointers consistent), index nodes
        have at least one child, data nodes are leaves with non-negative
        weight, and index-node order numbers are unique.
        """
        if self.root.parent is not None:
            raise TreeError("root must not have a parent")
        seen: set[int] = set()
        orders: set[int] = set()
        for node in self.preorder():
            if id(node) in seen:
                raise TreeError(f"node {node.label!r} reachable more than once")
            seen.add(id(node))
            if isinstance(node, IndexNode):
                if not node.children:
                    raise TreeError(f"index node {node.label!r} has no children")
                if node.order:
                    if node.order in orders:
                        raise TreeError(
                            f"duplicate index order number {node.order}"
                        )
                    orders.add(node.order)
                for child in node.children:
                    if child.parent is not node:
                        raise TreeError(
                            f"child {child.label!r} has inconsistent parent pointer"
                        )
            elif isinstance(node, DataNode):
                if node.weight < 0:
                    raise TreeError(
                        f"data node {node.label!r} has negative weight"
                    )
            else:  # pragma: no cover - defensive
                raise TreeError(f"unknown node type: {type(node)!r}")

    # -- transformation ------------------------------------------------------------
    def clone(self) -> "IndexTree":
        """Deep-copy the tree (fresh node objects, same labels/weights/keys)."""

        def copy(node: Node) -> Node:
            if isinstance(node, DataNode):
                return DataNode(node.label, node.weight, key=node.key)
            assert isinstance(node, IndexNode)
            duplicate = IndexNode(node.label, key=node.key)
            duplicate.order = node.order
            for child in node.children:
                duplicate.add_child(copy(child))
            return duplicate

        return IndexTree(copy(self.root), renumber=False, validate=False)

    def map_sorted_children(
        self, sort_key: Callable[[Node], object]
    ) -> "IndexTree":
        """Return a clone whose sibling lists are sorted by ``sort_key``."""
        duplicate = self.clone()
        for node in duplicate.preorder():
            if isinstance(node, IndexNode):
                node.children.sort(key=sort_key)
        return duplicate

    # -- rendering -----------------------------------------------------------------
    def to_ascii(self) -> str:
        """Render the tree as indented ASCII art (labels and weights)."""
        lines: list[str] = []

        def walk(node: Node, prefix: str, is_last: bool, is_root: bool) -> None:
            connector = "" if is_root else ("`-- " if is_last else "|-- ")
            if isinstance(node, DataNode):
                lines.append(f"{prefix}{connector}{node.label} (w={node.weight:g})")
            else:
                lines.append(f"{prefix}{connector}[{node.label}]")
                extension = "" if is_root else ("    " if is_last else "|   ")
                child_prefix = prefix + extension
                assert isinstance(node, IndexNode)
                for position, child in enumerate(node.children):
                    walk(
                        child,
                        child_prefix,
                        position == len(node.children) - 1,
                        False,
                    )

        walk(self.root, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IndexTree depth={self.depth()} "
            f"index={len(self.index_nodes())} data={len(self.data_nodes())}>"
        )
