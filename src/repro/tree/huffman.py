"""Classic (non-alphabetic) Huffman index trees.

[SV96] observes that the skewed index trees of [CYW97] are built like
Huffman codes: popular data nodes get shorter root paths, minimising the
average tuning time. The catch the paper points out (§1) is that a Huffman
tree does not preserve key order, so a client holding a search key cannot
navigate it as a search tree. We implement it anyway — it is the natural
lower-bound comparison structure for tuning time, and the test suite uses
it to demonstrate exactly the order-violation the paper criticises.

:func:`huffman_tree` supports any fanout k >= 2 using the standard
dummy-padding trick so every merge is a full k-way merge.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

from .index_tree import IndexTree
from .node import DataNode, IndexNode, Node

__all__ = ["huffman_tree", "expected_probe_depth"]


def huffman_tree(
    labels: Sequence[str],
    weights: Sequence[float],
    fanout: int = 2,
) -> IndexTree:
    """Build a k-ary Huffman tree over the labelled weights.

    Minimises ``sum W(leaf) * edge_depth(leaf)`` over *all* trees of the
    given fanout (order-free), so its cost lower-bounds any alphabetic
    tree over the same weights. Zero-weight dummy leaves are added so that
    ``(n - 1) mod (k - 1) == 0`` and then elided from the final tree.
    """
    if len(labels) != len(weights):
        raise ValueError("labels and weights must have equal length")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    if not labels:
        raise ValueError("weights must be non-empty")

    counter = itertools.count()  # tie-breaker: heap entries stay comparable
    heap: list[tuple[float, int, Node]] = [
        (float(weight), next(counter), DataNode(label, weight))
        for label, weight in zip(labels, weights)
    ]
    # Pad with dummies so the final merge is full.
    remainder = (len(heap) - 1) % (fanout - 1)
    if remainder:
        for _ in range(fanout - 1 - remainder):
            heap.append((0.0, next(counter), DataNode("_dummy", 0.0)))
    heapq.heapify(heap)

    while len(heap) > 1:
        merged: list[Node] = []
        total = 0.0
        for _ in range(min(fanout, len(heap))):
            weight, _, node = heapq.heappop(heap)
            total += weight
            merged.append(node)
        heapq.heappush(heap, (total, next(counter), IndexNode("", merged)))

    root = heap[0][2]
    root = _strip_dummies(root)
    if isinstance(root, DataNode):
        root = IndexNode("", [root])
    return IndexTree(root)


def _strip_dummies(node: Node) -> Node:
    """Remove padding leaves; collapse index nodes left with one child."""
    if isinstance(node, DataNode):
        return node
    assert isinstance(node, IndexNode)
    kept: list[Node] = []
    for child in node.children:
        if isinstance(child, DataNode) and child.label == "_dummy":
            continue
        kept.append(_strip_dummies(child))
    if len(kept) == 1:
        kept[0].parent = None
        return kept[0]
    replacement = IndexNode(node.label)
    for child in kept:
        replacement.add_child(child)
    return replacement


def expected_probe_depth(tree: IndexTree) -> float:
    """Average number of index probes to reach a data node.

    ``sum W(leaf) * edge_depth(leaf) / sum W`` — the per-request tuning
    time contributed by index traversal.
    """
    total = tree.total_weight()
    if total == 0:
        return 0.0
    weighted = sum(
        leaf.weight * (leaf.depth() - 1) for leaf in tree.data_nodes()
    )
    return weighted / total
