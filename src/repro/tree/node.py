"""Node model for index trees.

The paper's broadcast program is derived from an *index tree* (§2.1): a
rooted tree whose internal nodes are **index nodes** (search-key routing
information, one wireless bucket each) and whose leaves are **data nodes**
(the actual items clients request, also one bucket each). Each data node
``D_i`` carries a weight ``W(D_i)``, its average access frequency.

Index nodes additionally carry a unique *order weight*: the paper numbers
index nodes ``1, 2, 3, ...`` by a preorder traversal and uses that number to
make the local-swap exchange of two index nodes unidirectional (§3.2). The
:class:`~repro.tree.index_tree.IndexTree` constructor assigns these numbers;
they double as stable display labels (the paper's Fig. 1 labels its index
nodes exactly this way).

Nodes are plain mutable objects linked by ``children``/``parent`` references.
Identity is object identity — two distinct nodes may share a label. All
set-like bookkeeping in the search code keys on ``id(node)`` via the node's
default hash, which is what we want: a topological-tree path is a set of
*node objects*, not labels.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

__all__ = ["Node", "IndexNode", "DataNode"]


class Node:
    """Common behaviour of index and data nodes.

    Attributes
    ----------
    label:
        Human-readable name. The paper uses numerals for index nodes and
        letters for data nodes; builders follow the same convention.
    parent:
        The parent node, or ``None`` for the root (set when the node is
        attached to a tree or to a parent's child list).
    key:
        Optional search key used by the alphabetic (Hu–Tucker) builder to
        preserve key order across leaves; unused by the scheduler itself.
    """

    __slots__ = ("label", "parent", "key")

    def __init__(self, label: str, key: object = None) -> None:
        self.label = label
        self.parent: Optional[IndexNode] = None
        self.key = key

    # -- classification ----------------------------------------------------
    @property
    def is_index(self) -> bool:
        """Whether this node is an internal index node."""
        return isinstance(self, IndexNode)

    @property
    def is_data(self) -> bool:
        """Whether this node is a leaf data node."""
        return isinstance(self, DataNode)

    # -- navigation ---------------------------------------------------------
    def ancestors(self) -> Iterator["IndexNode"]:
        """Yield this node's proper ancestors, nearest (parent) first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the root of the tree this node belongs to."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Return this node's depth; the root has depth 1 (paper convention)."""
        return 1 + sum(1 for _ in self.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Index" if self.is_index else "Data"
        return f"<{kind} {self.label}>"


class IndexNode(Node):
    """An internal routing node of the index tree.

    Parameters
    ----------
    label:
        Display name; conventionally the preorder number as a string.
    children:
        Optional initial children; each child's ``parent`` is set.

    Attributes
    ----------
    order:
        The unique preorder number assigned by
        :meth:`repro.tree.index_tree.IndexTree.renumber`. Used by the §3.2
        local-swap rule (smaller ``order`` = should come earlier when two
        index nodes are exchangeable). ``0`` until the node joins a tree.
    """

    __slots__ = ("children", "order")

    def __init__(
        self,
        label: str = "",
        children: Sequence[Node] = (),
        key: object = None,
    ) -> None:
        super().__init__(label, key=key)
        self.children: list[Node] = []
        self.order: int = 0
        for child in children:
            self.add_child(child)

    def add_child(self, child: Node) -> Node:
        """Append ``child`` and take ownership of its ``parent`` pointer."""
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: Node) -> None:
        """Detach ``child``; raises ``ValueError`` if it is not a child."""
        self.children.remove(child)
        child.parent = None

    def replace_child(self, old: Node, new: Node) -> None:
        """Swap ``old`` for ``new`` in place, preserving sibling order."""
        position = self.children.index(old)
        old.parent = None
        new.parent = self
        self.children[position] = new


class DataNode(Node):
    """A leaf data item with an access-frequency weight ``W(D_i)``.

    Weights may be any non-negative real number; the paper's examples use
    integers (A=20, B=10, E=18, C=15, D=7) and its Fig. 14 experiment draws
    them from a normal distribution.
    """

    __slots__ = ("weight",)

    def __init__(self, label: str, weight: float, key: object = None) -> None:
        if weight < 0:
            raise ValueError(f"data node {label!r} has negative weight {weight}")
        super().__init__(label, key=key)
        self.weight = float(weight)
