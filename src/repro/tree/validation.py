"""Standalone structural checks for index trees.

:meth:`IndexTree.validate` covers the hard invariants; this module adds
diagnostic predicates used by tests, examples and the heuristics:
alphabetic-order checks, balance checks, and a structural-equality helper
for comparing trees produced by different builders.
"""

from __future__ import annotations

from typing import Callable

from .index_tree import IndexTree
from .node import DataNode, IndexNode, Node

__all__ = [
    "is_alphabetic",
    "is_full_balanced",
    "trees_equal",
    "leaf_depths",
]


def is_alphabetic(tree: IndexTree, key: Callable[[DataNode], object] | None = None) -> bool:
    """Whether the left-to-right leaves are in non-decreasing key order.

    ``key`` defaults to each data node's ``key`` attribute when every leaf
    has one, otherwise the label. This is the search-tree property the
    paper requires of its index (§1): a Huffman tree typically fails it.
    """
    leaves = tree.data_nodes()
    if key is None:
        if all(leaf.key is not None for leaf in leaves):
            key = lambda leaf: leaf.key  # noqa: E731 - tiny local accessor
        else:
            key = lambda leaf: leaf.label  # noqa: E731
    values = [key(leaf) for leaf in leaves]
    return all(a <= b for a, b in zip(values, values[1:]))  # type: ignore[operator]


def is_full_balanced(tree: IndexTree, fanout: int) -> bool:
    """Whether every index node has exactly ``fanout`` children and all
    data nodes sit at the same depth."""
    for node in tree.index_nodes():
        if len(node.children) != fanout:
            return False
    depths = {leaf.depth() for leaf in tree.data_nodes()}
    return len(depths) <= 1


def leaf_depths(tree: IndexTree) -> dict[str, int]:
    """Edge depth of each data node, keyed by label."""
    return {leaf.label: leaf.depth() - 1 for leaf in tree.data_nodes()}


def trees_equal(left: IndexTree, right: IndexTree) -> bool:
    """Structural equality: same shape, labels, and data weights."""

    def same(a: Node, b: Node) -> bool:
        if isinstance(a, DataNode) != isinstance(b, DataNode):
            return False
        if a.label != b.label:
            return False
        if isinstance(a, DataNode):
            assert isinstance(b, DataNode)
            return a.weight == b.weight
        assert isinstance(a, IndexNode) and isinstance(b, IndexNode)
        if len(a.children) != len(b.children):
            return False
        return all(same(x, y) for x, y in zip(a.children, b.children))

    return same(left.root, right.root)
