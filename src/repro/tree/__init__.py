"""Index-tree substrate: nodes, trees, builders, and constructions.

The paper assumes a k-nary *alphabetic Huffman* index tree ([HT71]/[SV96])
over the broadcast data; this package implements that structure from
scratch together with the builders its experiments use (full balanced
m-ary trees, the Fig. 1 running example) and the classic Huffman tree it
is contrasted against.
"""

from .alphabetic import (
    alphabetic_cost,
    build_index,
    garsia_wachs_levels,
    garsia_wachs_tree,
    hu_tucker_levels,
    hu_tucker_tree,
    optimal_alphabetic_tree,
    weight_balanced_tree,
)
from .builders import (
    balanced_tree,
    chain_tree,
    data_labels,
    from_spec,
    paper_example_tree,
    random_tree,
)
from .huffman import expected_probe_depth, huffman_tree
from .index_tree import IndexTree
from .node import DataNode, IndexNode, Node
from .validation import is_alphabetic, is_full_balanced, leaf_depths, trees_equal

__all__ = [
    "Node",
    "IndexNode",
    "DataNode",
    "IndexTree",
    "paper_example_tree",
    "balanced_tree",
    "chain_tree",
    "random_tree",
    "from_spec",
    "data_labels",
    "hu_tucker_levels",
    "hu_tucker_tree",
    "garsia_wachs_levels",
    "garsia_wachs_tree",
    "optimal_alphabetic_tree",
    "weight_balanced_tree",
    "build_index",
    "alphabetic_cost",
    "huffman_tree",
    "expected_probe_depth",
    "is_alphabetic",
    "is_full_balanced",
    "leaf_depths",
    "trees_equal",
]
