"""Constructors for the index-tree shapes used throughout the paper.

* :func:`paper_example_tree` — the running example of Fig. 1(a).
* :func:`balanced_tree` — the full balanced m-ary tree of depth ``d`` used
  by the Table 1 and Fig. 14 experiments (depth counts the root, so depth 3
  means root, m index children, m^2 data leaves).
* :func:`chain_tree` — the degenerate chain of §1.1's "waste of channel
  space" argument.
* :func:`random_tree` — random-shape trees for property-based testing.
* :func:`from_spec` — build a tree from a nested literal, handy in tests.
"""

from __future__ import annotations

import string
from typing import Sequence

import numpy as np

from .index_tree import IndexTree
from .node import DataNode, IndexNode, Node

__all__ = [
    "paper_example_tree",
    "balanced_tree",
    "chain_tree",
    "random_tree",
    "from_spec",
    "data_labels",
]


def data_labels(count: int) -> list[str]:
    """Generate ``count`` data-node labels: A..Z, then A1, B1, ...

    The paper labels data nodes with letters; for larger trees we suffix a
    round counter to stay unique and readable.
    """
    letters = string.ascii_uppercase
    labels = []
    for position in range(count):
        round_number, letter = divmod(position, len(letters))
        suffix = str(round_number) if round_number else ""
        labels.append(letters[letter] + suffix)
    return labels


def paper_example_tree() -> IndexTree:
    """The Fig. 1(a) index tree.

    Structure::

        [1]
        |-- [2]
        |   |-- A (20)
        |   `-- B (10)
        `-- [3]
            |-- E (18)
            `-- [4]
                |-- C (15)
                `-- D (7)

    Weights: A=20, B=10, E=18, C=15, D=7. The paper's worked data waits for
    this tree are 6.01 (one channel, Fig. 2(a)) and 3.88 (two channels,
    Fig. 2(b)).
    """
    node4 = IndexNode("4", [DataNode("C", 15), DataNode("D", 7)])
    node3 = IndexNode("3", [DataNode("E", 18), node4])
    node2 = IndexNode("2", [DataNode("A", 20), DataNode("B", 10)])
    root = IndexNode("1", [node2, node3])
    return IndexTree(root)


def balanced_tree(
    fanout: int,
    depth: int = 3,
    weights: Sequence[float] | None = None,
) -> IndexTree:
    """A full balanced ``fanout``-ary tree of the given ``depth``.

    Depth counts levels including the root, so ``depth=3`` yields one root
    index node, ``fanout`` second-level index nodes and ``fanout**2`` data
    leaves — the exact shape of the paper's §4 experiments.

    Parameters
    ----------
    fanout:
        Number of children per index node (>= 1).
    depth:
        Number of levels (>= 2: at least a root and a layer of leaves).
    weights:
        Data-node weights in left-to-right leaf order. Defaults to all 1.0.
        Must have exactly ``fanout**(depth-1)`` entries when given.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if depth < 2:
        raise ValueError("depth must be >= 2 (a root plus data leaves)")
    leaf_count = fanout ** (depth - 1)
    if weights is None:
        weights = [1.0] * leaf_count
    if len(weights) != leaf_count:
        raise ValueError(
            f"expected {leaf_count} weights for fanout={fanout} depth={depth}, "
            f"got {len(weights)}"
        )
    labels = data_labels(leaf_count)
    leaf_iter = iter(zip(labels, weights))

    def build(level: int) -> Node:
        if level == depth:
            label, weight = next(leaf_iter)
            return DataNode(label, weight)
        return IndexNode("", [build(level + 1) for _ in range(fanout)])

    return IndexTree(build(1))


def chain_tree(length: int, leaf_weight: float = 1.0) -> IndexTree:
    """A chain of ``length`` index nodes ending in a single data node.

    This is the §1.1 extreme case: a level-per-channel allocation of its
    index would waste ``length - 1`` channels because no two of its nodes
    can ever be accessed simultaneously.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    node: Node = DataNode("A", leaf_weight)
    for _ in range(length):
        node = IndexNode("", [node])
    return IndexTree(node)


def random_tree(
    rng: np.random.Generator,
    data_count: int,
    max_fanout: int = 3,
    max_weight: float = 100.0,
    integer_weights: bool = True,
) -> IndexTree:
    """A random-shape index tree with ``data_count`` data leaves.

    The shape is drawn by recursively partitioning the leaf set into
    between 2 and ``max_fanout`` groups (single-leaf groups become data
    children directly). Weights are uniform on ``(0, max_weight]``;
    ``integer_weights`` rounds them up to integers, which keeps exact
    cost comparisons free of float-tie ambiguity in tests.
    """
    if data_count < 1:
        raise ValueError("data_count must be >= 1")
    labels = data_labels(data_count)
    weights = rng.uniform(0.0, max_weight, size=data_count)
    if integer_weights:
        weights = np.floor(weights) + 1.0
    leaves = [DataNode(label, weight) for label, weight in zip(labels, weights)]

    def build(group: list[DataNode]) -> Node:
        if len(group) == 1:
            return group[0]
        parts = min(len(group), int(rng.integers(2, max_fanout + 1)))
        # Random split points keep the subtree sizes varied.
        cut_points = sorted(
            rng.choice(np.arange(1, len(group)), size=parts - 1, replace=False)
        )
        pieces = []
        start = 0
        for cut in list(cut_points) + [len(group)]:
            pieces.append(group[start:cut])
            start = cut
        return IndexNode("", [build(piece) for piece in pieces])

    root = build(leaves)
    if isinstance(root, DataNode):
        root = IndexNode("", [root])
    return IndexTree(root)


def from_spec(spec: object) -> IndexTree:
    """Build a tree from a nested literal.

    A spec is either a ``(label, weight)`` tuple (data node) or a list of
    specs (index node). Index labels are assigned by preorder numbering.

    >>> tree = from_spec([[("A", 20), ("B", 10)], [("E", 18), [("C", 15), ("D", 7)]]])
    >>> [d.label for d in tree.data_nodes()]
    ['A', 'B', 'E', 'C', 'D']
    """

    def build(node_spec: object) -> Node:
        if isinstance(node_spec, tuple):
            label, weight = node_spec
            return DataNode(str(label), float(weight))
        if isinstance(node_spec, list):
            return IndexNode("", [build(child) for child in node_spec])
        raise TypeError(f"bad tree spec element: {node_spec!r}")

    return IndexTree(build(spec))
