"""One planning facade over every allocator in the repository.

The solvers grew up in different modules with different shapes:
:func:`repro.core.optimal.solve` returns an ``OptimalResult``, the §4.2
heuristics return bare schedules, the [SV96] baseline dictates its own
channel count. Every consumer that wanted to choose between them —
the serving loop, the adaptive broadcaster, the analysis runners, the
CLI — therefore hard-coded imports and special-cased each return type.

This module is the API seam that removes those special cases:

* :class:`PlanResult` — the common result shape (schedule + cost +
  method + stats);
* :class:`Planner` — the protocol a planning strategy implements:
  ``plan(tree, channels, *, perf=None, rng=None, **options)``;
* a **registry** mapping stable names (``"auto"``, ``"best-first"``,
  ``"dfs-bnb"``, ``"datatree"``, ``"corollary1"``, ``"sorting"``,
  ``"shrink-combine"``, ``"shrink-partition"``, ``"sv96"``,
  ``"budgeted"``) to planners — :func:`register` adds your own;
* :func:`plan` — the one-call facade: ``plan(tree, channels,
  method="sorting")``.

Registry names are how the rest of the system speaks about planning:
``BroadcastServer(planner="budgeted")``, ``broadcast-alloc solve
--planner dfs-bnb``, the loss-sweep experiment's method axis. New
strategies become available everywhere by registering, without touching
any consumer.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from .broadcast.schedule import BroadcastSchedule
from .core.optimal import solve
from .exceptions import ReproError, SearchBudgetExceeded
from .heuristics.channel_allocation import allocate_sorted_tree, sorting_schedule
from .heuristics.shrinking import shrink_and_solve
from .perf import PerfRecorder
from .tree.index_tree import IndexTree

__all__ = [
    "PlanResult",
    "Planner",
    "PlannerNotFound",
    "register",
    "unregister",
    "get_planner",
    "available_planners",
    "plan",
    "plan_catalog",
]


class PlannerNotFound(ReproError, KeyError):
    """No planner is registered under the requested name."""

    def __init__(self, name: str, available: list[str]) -> None:
        super().__init__(
            f"no planner registered as {name!r}; available: "
            f"{', '.join(available)}"
        )
        self.name = name


@dataclass
class PlanResult:
    """What every planner returns: a schedule with provenance.

    Attributes
    ----------
    schedule:
        The validated broadcast schedule.
    cost:
        Its average data wait (formula (1)) — always the *measured*
        ``schedule.data_wait()`` for heuristics, the proven optimum for
        exact methods (the two agree for those by the solver's own
        invariant).
    method:
        The registry name (or the exact solver's sub-method) that
        produced it.
    stats:
        Method-specific effort counters, ``{}`` when there are none.
    """

    schedule: BroadcastSchedule
    cost: float
    method: str
    stats: dict = field(default_factory=dict)
    # Per-instance compilation caches. These must be real dataclass
    # fields: a bare class attribute would be shared by every
    # PlanResult, so the first instance's compiled program could be
    # served to a different plan whose schedule happened to replace it.
    _program: object = field(default=None, repr=False, compare=False, init=False)
    _dense: object = field(default=None, repr=False, compare=False, init=False)

    def compile(self, level: str = "program"):
        """The compiled form of the plan, cached per instance.

        ``level="program"`` (default) returns the pointer-wired
        :class:`~repro.broadcast.pointers.BroadcastProgram` — what every
        consumer that *executes* a plan needs (the client simulator, the
        serving loop, the :mod:`repro.net` station). ``level="dense"``
        returns the flat-array :class:`~repro.engine.DenseProgram` the
        batch engine runs. Both caches are keyed to the current
        ``schedule`` by identity: replacing the schedule invalidates
        them, and the dense level is rebuilt whenever the program is.
        """
        from .broadcast.pointers import compile_program

        if self._program is None or self._program.schedule is not self.schedule:
            self._program = compile_program(self.schedule)
            self._dense = None  # derived from the program just replaced
        if level == "program":
            return self._program
        if level == "dense":
            if self._dense is None:
                from .engine.dense import compile_dense

                self._dense = compile_dense(self._program)
            return self._dense
        raise ValueError(
            f"unknown compile level {level!r}; expected 'program' or 'dense'"
        )


@runtime_checkable
class Planner(Protocol):
    """The planning strategy protocol.

    A planner is any callable with this signature; ``perf`` and ``rng``
    are keyword-only everywhere (``rng`` exists for stochastic planners
    and is ignored by the deterministic built-ins), and unknown
    ``options`` must raise ``TypeError`` rather than pass silently.
    """

    def __call__(
        self,
        tree: IndexTree,
        channels: int,
        *,
        perf: PerfRecorder | None = None,
        rng: np.random.Generator | None = None,
        **options,
    ) -> PlanResult: ...


_REGISTRY: dict[str, Planner] = {}


def register(name: str, planner: Planner | None = None):
    """Register ``planner`` under ``name`` (usable as a decorator).

    Re-registering a name overwrites it — deliberate, so applications
    can shadow a built-in with a tuned variant.
    """
    if planner is None:

        def decorator(func: Planner) -> Planner:
            _REGISTRY[name] = func
            return func

        return decorator
    _REGISTRY[name] = planner
    return planner


def unregister(name: str) -> None:
    """Remove a registered planner (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_planner(name: str) -> Planner:
    """Resolve a registry name to its planner."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlannerNotFound(name, available_planners()) from None


def available_planners() -> list[str]:
    """Registered planner names, sorted."""
    return sorted(_REGISTRY)


def plan(
    tree: IndexTree,
    channels: int = 1,
    *,
    method: str = "auto",
    perf: PerfRecorder | None = None,
    rng: np.random.Generator | None = None,
    **options,
) -> PlanResult:
    """Allocate ``tree`` onto ``channels`` with the named strategy.

    The facade the rest of the system calls: resolves ``method`` in the
    registry and invokes it. ``options`` pass through to the planner
    (e.g. ``budget=`` for the exact methods, ``max_data_nodes=`` for the
    shrinking ones, ``fallback=`` for ``"budgeted"``).
    """
    return get_planner(method)(
        tree, channels, perf=perf, rng=rng, **options
    )


def plan_catalog(
    labels: "list[str]",
    weights: "list[float]",
    channels: int = 1,
    *,
    method: str = "auto",
    fanout: int = 3,
    perf: PerfRecorder | None = None,
    rng: np.random.Generator | None = None,
    **options,
) -> PlanResult:
    """Index a keyed catalog and allocate it in one call.

    The catalog-level entry point the sharded cluster plans each shard
    through: build the optimal alphabetic index tree over ``labels``
    (leaves stay in key order so lookup works) weighted by ``weights``,
    then run the named registry planner on it. ``labels`` must be
    sorted — a shard's routing directory hands each station a key-range
    slice, and an unsorted slice would silently break lookups.

    Planners that carry a ``from_catalog`` attribute (the approximation
    planners in :mod:`repro.approx`) take the **streaming path**: they
    are handed the catalog directly and build whatever index structure
    their strategy wants, skipping the cubic optimal construction that
    makes million-item catalogs unplannable through the default path.
    """
    if len(labels) != len(weights):
        raise ValueError(
            f"catalog has {len(labels)} labels but {len(weights)} weights"
        )
    if not labels:
        raise ValueError("cannot plan an empty catalog")
    # A single adjacent-pair scan, not ``list(labels) != sorted(labels)``:
    # the copy-and-sort check was O(n log n) plus two catalog-sized
    # temporary lists on *every* call — measurable at 10⁶ labels. The
    # perf counter pins the scan's cost to at most n-1 comparisons.
    comparisons = 0
    ordered = True
    rest = iter(labels)
    previous = next(rest)
    for label in rest:
        comparisons += 1
        if label < previous:
            ordered = False
            break
        previous = label
    if perf is not None:
        perf.count("planner.catalog.order_scans")
        perf.count("planner.catalog.order_comparisons", comparisons)
    if not ordered:
        raise ValueError("catalog labels must be in sorted key order")
    planner = get_planner(method)
    direct = getattr(planner, "from_catalog", None)
    if direct is not None:
        return direct(
            list(labels), list(weights), channels,
            fanout=fanout, perf=perf, rng=rng, **options,
        )
    from .tree.alphabetic import optimal_alphabetic_tree

    tree = optimal_alphabetic_tree(list(labels), list(weights), fanout=fanout)
    return plan(tree, channels, method=method, perf=perf, rng=rng, **options)


# ---------------------------------------------------------------------------
# Built-in planners
# ---------------------------------------------------------------------------

def _exact_planner(method: str) -> Planner:
    def planner(
        tree: IndexTree,
        channels: int,
        *,
        perf: PerfRecorder | None = None,
        rng: np.random.Generator | None = None,
        budget: int | None = None,
        **options,
    ) -> PlanResult:
        del rng  # deterministic
        result = solve(
            tree, channels, method=method, perf=perf, budget=budget, **options
        )
        return PlanResult(
            result.schedule, result.cost, result.method, result.stats
        )

    planner.__name__ = f"plan_{method.replace('-', '_')}"
    planner.__doc__ = (
        f"The exact solver facade with ``method={method!r}`` "
        "(see :func:`repro.core.optimal.solve`)."
    )
    return planner


for _method in ("auto", "best-first", "dfs-bnb", "datatree", "corollary1"):
    register(_method, _exact_planner(_method))


@register("sorting")
def plan_sorting(
    tree: IndexTree,
    channels: int,
    *,
    perf: PerfRecorder | None = None,
    rng: np.random.Generator | None = None,
) -> PlanResult:
    """Index Tree Sorting + ``1_To_k_BroadcastChannel`` (§4.2)."""
    del rng
    schedule = sorting_schedule(tree, channels, perf=perf)
    return PlanResult(schedule, schedule.data_wait(), "sorting")


def _shrink_planner(strategy: str) -> Planner:
    def planner(
        tree: IndexTree,
        channels: int,
        *,
        perf: PerfRecorder | None = None,
        rng: np.random.Generator | None = None,
        max_data_nodes: int = 12,
    ) -> PlanResult:
        del rng
        timer = (
            perf.timer(f"planner.shrink-{strategy}.seconds")
            if perf is not None
            else contextlib.nullcontext()
        )
        with timer:
            schedule = shrink_and_solve(
                tree, strategy, max_data_nodes=max_data_nodes
            )
            if channels > 1:
                # The shrink strategies are single-channel; their order
                # feeds the linear-time k-channel allocation, as §4.2
                # prescribes for large trees.
                order = sorted(schedule.nodes(), key=schedule.slot_of)
                schedule = allocate_sorted_tree(tree, channels, order=order)
        return PlanResult(
            schedule, schedule.data_wait(), f"shrink-{strategy}"
        )

    planner.__name__ = f"plan_shrink_{strategy}"
    planner.__doc__ = (
        f"Index Tree Shrinking ({strategy}) piped through the k-channel "
        "allocation for ``channels > 1``."
    )
    return planner


register("shrink-combine", _shrink_planner("combine"))
register("shrink-partition", _shrink_planner("partition"))


@register("sv96")
def plan_sv96(
    tree: IndexTree,
    channels: int,
    *,
    perf: PerfRecorder | None = None,
    rng: np.random.Generator | None = None,
) -> PlanResult:
    """The [SV96] level-per-channel layout (§1.1).

    The scheme dictates its own channel count (one per tree level);
    ``channels`` is recorded as a stat but not obeyed — exactly the
    inflexibility the paper criticises, kept visible here.
    """
    del perf, rng
    from .baselines.level_allocation import (
        sv96_channels_needed,
        sv96_level_schedule,
    )

    schedule = sv96_level_schedule(tree)
    return PlanResult(
        schedule,
        schedule.data_wait(),
        "sv96",
        stats={
            "channels_requested": channels,
            "channels_used": sv96_channels_needed(tree),
        },
    )


@register("budgeted")
def plan_budgeted(
    tree: IndexTree,
    channels: int,
    *,
    perf: PerfRecorder | None = None,
    rng: np.random.Generator | None = None,
    budget: int = 200_000,
    exact_threshold: int | None = None,
    fallback: str = "sorting",
) -> PlanResult:
    """Exact within a search budget, named ``fallback`` planner beyond.

    The production policy the server runs: try the optimal solver with a
    node-expansion ``budget`` (skipped outright when the catalog exceeds
    ``exact_threshold`` data nodes), and fall back to the ``fallback``
    registry planner when exactness is unaffordable. The result's
    ``stats["fell_back"]`` says which side served.
    """
    affordable = (
        exact_threshold is None
        or len(tree.data_nodes()) <= exact_threshold
    )
    if affordable:
        try:
            result = plan(
                tree, channels, method="auto", perf=perf, rng=rng,
                budget=budget,
            )
            result.stats = {**result.stats, "fell_back": False}
            return result
        except SearchBudgetExceeded:
            if perf is not None:
                perf.count("planner.budget_fallbacks")
    result = plan(tree, channels, method=fallback, perf=perf, rng=rng)
    result.stats = {**result.stats, "fell_back": True}
    return result


# Importing repro.approx registers the approximation planners ("ptas",
# "meta"). The import sits at module bottom because those planners call
# back into register()/plan()/PlanResult defined above — the one-way
# late import that makes the registry self-populating without any
# consumer importing repro.approx explicitly.
from . import approx as _approx  # noqa: E402,F401  (registration side effect)
