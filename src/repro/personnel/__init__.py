"""Personnel Assignment Problem (§2.2): model, solver, and the broadcast
transformation the paper's solution technique is derived from."""

from .problem import PersonnelAssignmentProblem
from .solver import AssignmentResult, solve_assignment
from .transform import allocation_from_assignment, to_assignment_problem

__all__ = [
    "PersonnelAssignmentProblem",
    "AssignmentResult",
    "solve_assignment",
    "to_assignment_problem",
    "allocation_from_assignment",
]
