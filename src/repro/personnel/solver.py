"""Exact solver for (small) personnel assignment instances.

The paper notes the problem is NP-hard; this branch-and-bound explores
the same topological structure as the broadcast search — jobs are taken
in topological-sort order and packed into persons left to right — with a
simple admissible bound (each unassigned job gets its cheapest remaining
person, ignoring interactions). Intended for the transform-equivalence
tests and for instances of a few dozen jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InfeasibleError, SearchBudgetExceeded
from .problem import PersonnelAssignmentProblem

__all__ = ["AssignmentResult", "solve_assignment"]


@dataclass
class AssignmentResult:
    """An optimal assignment.

    ``assignment[j]`` is the person (0-based) holding job ``j``;
    ``cost`` the total; ``nodes_expanded`` the branch-and-bound effort.
    """

    assignment: list[int]
    cost: float
    nodes_expanded: int


def solve_assignment(
    problem: PersonnelAssignmentProblem,
    node_budget: int | None = None,
) -> AssignmentResult:
    """Minimise total cost over feasible (capacitated) assignments.

    Jobs whose predecessors are all assigned are *available*; the search
    fills persons in increasing order, placing up to ``capacity``
    available jobs per person (mirroring the slot semantics of §2.2's
    transformation — co-assigned jobs are mutually order-free because
    each became available before the person was sealed).
    """
    jobs = problem.job_count
    if jobs == 0:
        return AssignmentResult([], 0.0, 0)

    predecessor_masks = [0] * jobs
    for before, after in problem.precedence:
        predecessor_masks[after] |= 1 << before

    best_cost = float("inf")
    best_assignment: list[int] | None = None
    assignment = [-1] * jobs
    expanded = 0

    cheapest_tail = _cheapest_tail_costs(problem)

    def available_jobs(done: int) -> list[int]:
        return [
            j
            for j in range(jobs)
            if not (done >> j) & 1
            and (predecessor_masks[j] & done) == predecessor_masks[j]
        ]

    def extend(done: int, person: int, cost: float) -> None:
        nonlocal best_cost, best_assignment, expanded
        expanded += 1
        if node_budget is not None and expanded > node_budget:
            raise SearchBudgetExceeded(node_budget)
        if done == (1 << jobs) - 1:
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment.copy()
            return
        if person >= problem.person_count:
            return
        remaining = jobs - done.bit_count()
        if cost + remaining * cheapest_tail[person] >= best_cost:
            return
        candidates = available_jobs(done)
        # Fill this person with every subset of available jobs of size
        # up to capacity (including skipping the person entirely, which
        # can be necessary when costs decrease with person index — they
        # do not in the broadcast transform, but the classic problem
        # allows it only when persons outnumber jobs).
        for subset in _subsets_up_to(candidates, problem.capacity):
            subset_cost = cost
            for job in subset:
                subset_cost += problem.costs[job][person]
                assignment[job] = person
            next_done = done
            for job in subset:
                next_done |= 1 << job
            extend(next_done, person + 1, subset_cost)
            for job in subset:
                assignment[job] = -1

    extend(0, 0, 0.0)
    if best_assignment is None:
        raise InfeasibleError("no feasible assignment exists")
    return AssignmentResult(best_assignment, best_cost, expanded)


def _cheapest_tail_costs(problem: PersonnelAssignmentProblem) -> list[float]:
    """``cheapest_tail[p]`` — the cheapest single cost entry over persons
    ``>= p`` (a very loose but admissible per-job bound)."""
    persons = problem.person_count
    minima = [float("inf")] * (persons + 1)
    minima[persons] = 0.0 if problem.job_count == 0 else float("inf")
    for person in range(persons - 1, -1, -1):
        column_min = min(
            (problem.costs[job][person] for job in range(problem.job_count)),
            default=0.0,
        )
        minima[person] = min(minima[person + 1], column_min)
    # A person index past the end means unassignable; map inf -> 0 for the
    # bound only when every job is already placed (handled by caller).
    return [0.0 if value == float("inf") else value for value in minima]


def _subsets_up_to(items: list[int], capacity: int):
    """All subsets of ``items`` with between 0 and ``capacity`` members.

    The empty subset lets the solver leave a person idle; with the
    broadcast transform's monotone costs it is immediately dominated and
    the bound cuts it off.
    """
    from itertools import combinations

    for size in range(min(capacity, len(items)), -1, -1):
        for subset in combinations(items, size):
            yield subset
