"""§2.2's problem transformation: broadcast allocation → personnel assignment.

Jobs are the index-tree nodes (``J = I ∪ D``) with the tree's
parent-child order; persons are the channel slots, linearly ordered, each
holding up to ``k`` order-free jobs (Fig. 4). The cost of assigning a
*data* node to slot ``s`` is ``W(D_i) · s`` — summing these reproduces
the unnormalised formula (1) — while index nodes cost nothing wherever
they go.

:func:`to_assignment_problem` builds that instance;
:func:`allocation_from_assignment` converts a solved assignment back into
a broadcast schedule. The test suite round-trips small trees through the
PAP solver and checks the optimum matches the native broadcast search —
the equivalence claim of §2.2.
"""

from __future__ import annotations

from ..broadcast.assembly import assemble_schedule
from ..broadcast.schedule import BroadcastSchedule
from ..core.problem import AllocationProblem
from ..exceptions import TransformError
from .problem import PersonnelAssignmentProblem
from .solver import AssignmentResult

__all__ = ["to_assignment_problem", "allocation_from_assignment"]


def to_assignment_problem(
    problem: AllocationProblem, slots: int | None = None
) -> PersonnelAssignmentProblem:
    """Build the PAP instance for a broadcast allocation problem.

    ``slots`` defaults to the node count — always enough persons, since a
    feasible allocation never needs more slots than nodes.
    """
    node_count = len(problem)
    if slots is None:
        slots = node_count
    costs = [
        [
            problem.weight[node_id] * (slot + 1)  # persons are 0-based
            for slot in range(slots)
        ]
        for node_id in range(node_count)
    ]
    precedence = [
        (problem.parent[node_id], node_id)
        for node_id in range(node_count)
        if problem.parent[node_id] >= 0
    ]
    return PersonnelAssignmentProblem(
        costs=costs, precedence=precedence, capacity=problem.channels
    )


def allocation_from_assignment(
    problem: AllocationProblem, result: AssignmentResult
) -> BroadcastSchedule:
    """Convert a solved assignment back into a broadcast schedule.

    Persons (0-based) become slots (1-based); idle persons are squeezed
    out so the schedule stays dense, which never increases any data
    node's wait. Raises :class:`TransformError` if the assignment does
    not cover every node.
    """
    if len(result.assignment) != len(problem):
        raise TransformError(
            "assignment length does not match the node count"
        )
    used_persons = sorted(set(result.assignment))
    slot_of_person = {person: s + 1 for s, person in enumerate(used_persons)}
    groups: list[list] = [[] for _ in used_persons]
    for node_id, person in enumerate(result.assignment):
        groups[slot_of_person[person] - 1].append(problem.node_of(node_id))
    return assemble_schedule(problem.tree, groups, problem.channels)
