"""The Personnel Assignment Problem (§2.2).

The paper grounds its search technique in this NP-hard problem: given a
linearly ordered set of *persons* and a partially ordered set of *jobs*,
assign jobs to persons one-to-one such that ``J_i <= J_j`` implies
``f(J_i) < f(J_j)``, minimising the total assignment cost ``Σ C[i][f(i)]``.

:class:`PersonnelAssignmentProblem` models the classic form (one job per
person). The broadcast transform in :mod:`repro.personnel.transform`
produces the generalised form the paper uses — up to ``k`` order-free
jobs may share a person (a channel slot) — represented by
``capacity > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import InfeasibleError

__all__ = ["PersonnelAssignmentProblem"]


@dataclass
class PersonnelAssignmentProblem:
    """A (possibly capacitated) personnel assignment instance.

    Attributes
    ----------
    costs:
        ``costs[j][p]`` — cost of assigning job ``j`` to person ``p``.
        Row count is the number of jobs; column count the number of
        persons.
    precedence:
        Pairs ``(i, j)`` meaning ``J_i <= J_j`` (job ``i`` must go to an
        earlier person than job ``j``). The transitive closure need not
        be given.
    capacity:
        Jobs a single person may hold (1 for the classic problem; ``k``
        for the slot interpretation, where co-assigned jobs must be
        order-free — enforced by the solver through the precedence
        relation itself).
    """

    costs: Sequence[Sequence[float]]
    precedence: Sequence[tuple[int, int]] = field(default_factory=list)
    capacity: int = 1

    def __post_init__(self) -> None:
        self.job_count = len(self.costs)
        self.person_count = len(self.costs[0]) if self.job_count else 0
        for row in self.costs:
            if len(row) != self.person_count:
                raise ValueError("cost matrix rows must have equal length")
        for before, after in self.precedence:
            if not (0 <= before < self.job_count and 0 <= after < self.job_count):
                raise ValueError(
                    f"precedence pair ({before}, {after}) out of range"
                )
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.job_count > self.person_count * self.capacity:
            raise InfeasibleError(
                f"{self.job_count} jobs cannot fit "
                f"{self.person_count} persons x capacity {self.capacity}"
            )

    # -- derived structure -------------------------------------------------
    def predecessors(self) -> list[list[int]]:
        """Direct predecessor lists per job."""
        result: list[list[int]] = [[] for _ in range(self.job_count)]
        for before, after in self.precedence:
            result[after].append(before)
        return result

    def successors(self) -> list[list[int]]:
        """Direct successor lists per job."""
        result: list[list[int]] = [[] for _ in range(self.job_count)]
        for before, after in self.precedence:
            result[before].append(after)
        return result

    def is_feasible_assignment(self, assignment: Sequence[int]) -> bool:
        """Whether ``assignment[j] = person`` satisfies all constraints."""
        if len(assignment) != self.job_count:
            return False
        load: dict[int, int] = {}
        for person in assignment:
            if not 0 <= person < self.person_count:
                return False
            load[person] = load.get(person, 0) + 1
            if load[person] > self.capacity:
                return False
        for before, after in self.precedence:
            if assignment[before] >= assignment[after]:
                return False
        return True

    def assignment_cost(self, assignment: Sequence[int]) -> float:
        """Total cost ``Σ costs[j][assignment[j]]``."""
        return sum(
            self.costs[job][person]
            for job, person in enumerate(assignment)
        )
