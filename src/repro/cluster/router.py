"""The cluster's routing directory: key → shard, explicitly.

Routing is a *directory*, not a function: the partitioner seeds an
explicit key→shard map and from then on only
:meth:`ClusterRouter.move` rewrites entries. That is what makes routing
**stable under re-partition of untouched shards** — replanning shard 2's
schedule (or even rebuilding its whole tree) cannot move a single key
owned by shard 0, because nothing recomputes the map as a side effect.
The refit loop leans on exactly this: it moves a handful of hot keys,
replans the two touched shards, and every other shard's tuners keep
routing where they always did.

The directory also answers the tuner-assignment question of the live
cluster: a client asking for key ``K017`` is handed the (host, port) of
the one station whose schedule airs it — see
:meth:`repro.cluster.core.StationCluster.endpoint_of` once stations are
up.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..exceptions import ReproError

__all__ = ["ClusterRouter", "UnknownKeyError"]


class UnknownKeyError(ReproError, KeyError):
    """The requested key is not in the cluster's catalog directory."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} is not in the cluster directory")
        self.key = key


class ClusterRouter:
    """Explicit key→shard directory with deterministic, auditable moves.

    Parameters
    ----------
    assignment:
        Initial key→shard map (what a partitioner produced). Every
        shard id must lie in ``0..shards-1``; every key appears exactly
        once by construction of a dict.
    shards:
        Number of shards the directory spans (fixed for the router's
        lifetime — growing the cluster is a re-partition, not a move).
    """

    def __init__(self, assignment: Mapping[str, int], shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not assignment:
            raise ValueError("router needs a non-empty assignment")
        for key, shard in assignment.items():
            if not 0 <= shard < shards:
                raise ValueError(
                    f"key {key!r} assigned to shard {shard}, outside "
                    f"0..{shards - 1}"
                )
        self.shards = shards
        self._directory: dict[str, int] = dict(assignment)
        self.moves = 0  # total keys ever re-routed, for refit reporting

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, key: str) -> bool:
        return key in self._directory

    def shard_of(self, key: str) -> int:
        """The one shard that owns ``key``; :class:`UnknownKeyError` if none."""
        try:
            return self._directory[key]
        except KeyError:
            raise UnknownKeyError(key) from None

    def keys_of(self, shard: int) -> list[str]:
        """The keys shard ``shard`` owns, in sorted key order.

        Sorted order is load-bearing: a shard's station airs an
        *alphabetic* index tree, so its catalog slice must be handed to
        the planner in key order.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard must be in 0..{self.shards - 1}")
        return sorted(
            key for key, owner in self._directory.items() if owner == shard
        )

    def counts(self) -> list[int]:
        """Keys per shard, indexed by shard id."""
        counts = [0] * self.shards
        for shard in self._directory.values():
            counts[shard] += 1
        return counts

    def assignment(self) -> dict[str, int]:
        """A snapshot copy of the directory (mutating it changes nothing)."""
        return dict(self._directory)

    def move(self, keys: Iterable[str], to_shard: int) -> list[str]:
        """Re-route ``keys`` to ``to_shard``; returns the keys that moved.

        Unknown keys raise (a typo in a refit decision must not pass
        silently); keys already on ``to_shard`` are counted as not
        moved. Entries for every other key are untouched — the
        stability property the router exists to provide.
        """
        if not 0 <= to_shard < self.shards:
            raise ValueError(f"shard must be in 0..{self.shards - 1}")
        moved: list[str] = []
        keys = list(keys)
        for key in keys:
            if key not in self._directory:
                raise UnknownKeyError(key)
        for key in keys:
            if self._directory[key] != to_shard:
                self._directory[key] = to_shard
                moved.append(key)
        self.moves += len(moved)
        return moved
