"""The sharded station cluster and its workload-partitioned refit loop.

One :class:`~repro.net.station.BroadcastStation` airing one schedule
tops out at one channel group's bandwidth; the ROADMAP's
millions-of-users target means N stations, each airing a schedule tuned
to *its own* slice of the workload, with a routing directory in front.
:class:`StationCluster` is that layer:

* a **partitioner** (:mod:`repro.cluster.partition`) seeds the key→shard
  split;
* each shard's catalog slice is indexed and allocated through
  :func:`repro.planners.plan_catalog` — sharding narrows each catalog,
  which is exactly where the exact search stays affordable;
* a :class:`~repro.cluster.router.ClusterRouter` directory maps every
  requested key to the one shard that airs it;
* :meth:`StationCluster.refit` iterates *partition → plan per shard →
  measure per-shard cost → re-route hot keys → repeat*: per-shard cost
  is **measured**, not assumed — a seeded request sample replays
  through the frame-level simulator with an
  :class:`~repro.obs.attrib.AttributionCollector` feeding shard-labelled
  :class:`~repro.obs.metrics.MetricsRegistry` summaries, and the loop
  moves the costliest shard's hottest keys to the cheapest shard until
  the aggregate expected access time stops improving. Every draw is
  seeded, so a refit is a pure function of (catalog, seed).

The cluster-and-tune shape follows Hang 2024's distributed index-tuning
fleet (see ``/root/related/const-sambird__extend-dist``), with planners
standing in for index tuners and stations for replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..broadcast.pointers import BroadcastProgram
from ..io.wire import DEFAULT_BUCKET_SIZE, encode_program
from ..io.wire_client import wire_walk
from ..obs.attrib import AttributionCollector
from ..obs.events import NULL_TRACER, Tracer
from ..obs.metrics import MetricsRegistry
from ..obs.spans import span_tracer_of
from ..perf import PerfRecorder
from ..planners import PlanResult, plan_catalog
from ..sched import ScheduleStore
from .partition import partition_catalog
from .router import ClusterRouter

__all__ = ["ShardPlan", "RefitRound", "RefitReport", "StationCluster"]


@dataclass
class ShardPlan:
    """One shard's catalog slice, plan, and measured cost."""

    shard: int
    keys: list[str]
    weights: list[float]
    result: PlanResult
    program: BroadcastProgram
    #: Sum of the shard's access weights — its share of the request
    #: stream, since requests are drawn proportionally to weight.
    load: float
    #: Measured mean access time (slots) of the latest sample replay;
    #: ``None`` until :meth:`StationCluster.measure` runs.
    cost: float | None = None

    @property
    def cycle_length(self) -> int:
        return self.program.cycle_length

    def to_row(self) -> dict:
        return {
            "shard": self.shard,
            "keys": len(self.keys),
            "load": self.load,
            "cycle_length": self.cycle_length,
            "planner_cost": self.result.cost,
            "measured_cost": self.cost,
        }


@dataclass(frozen=True)
class RefitRound:
    """One accepted (or rejected) hot-key re-route."""

    moved: tuple[str, ...]
    from_shard: int
    to_shard: int
    before: float
    after: float
    accepted: bool


@dataclass
class RefitReport:
    """What :meth:`StationCluster.refit` did, round by round."""

    initial: float
    final: float
    rounds: list[RefitRound] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.final < self.initial

    def to_dict(self) -> dict:
        return {
            "initial": self.initial,
            "final": self.final,
            "improved": self.improved,
            "rounds": [
                {
                    "moved": list(r.moved),
                    "from_shard": r.from_shard,
                    "to_shard": r.to_shard,
                    "before": r.before,
                    "after": r.after,
                    "accepted": r.accepted,
                }
                for r in self.rounds
            ],
        }


class StationCluster:
    """N broadcast shards, a routing directory, and a measuring refit loop.

    Parameters
    ----------
    catalog:
        The full (key, weight) catalog, keys unique. Needs at least one
        key per shard.
    shards:
        Number of station shards.
    partitioner:
        :mod:`repro.cluster.partition` registry name seeding the split.
    planner:
        :mod:`repro.planners` registry name used for **every** shard's
        allocation — per-shard plan selection goes through the same
        facade the single-station stack uses. Defaults to the
        :mod:`repro.approx` meta-planner, which sizes up each shard's
        slice and picks a method per shard; the cluster passes it
        ``wire_safe=True`` because station wire walks need the
        key-separator routing the ptas trees give up.
    channels, fanout, bucket_size:
        Per-shard program shape: each shard airs its own ``channels``
        broadcast channels (an N-shard cluster is N× the air bandwidth).
    seed:
        Seeds the refit loop's measurement samples; the whole
        partition/plan/refit pipeline is a pure function of
        (catalog, seed).
    sample_requests:
        Total request sample size per measurement pass, split across
        shards proportionally to load (each shard gets at least 16).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, every measurement pass feeds shard-labelled walk
        summaries (``repro_walk_access_time_slots{shard="2"}`` …) and a
        per-shard measured-cost gauge, so an operator can watch the
        refit converge on ``/metrics``.
    store_dir:
        Optional directory of per-shard
        :class:`~repro.sched.ScheduleStore` roots (``shard-00`` …).
        When given, every shard (re)plan — the initial planning pass,
        each refit move and each revert — is published as a store
        version, so a shard's plan history is durable, diffable and
        rollbackable exactly like the single-station store; a revert
        republishes the identical document, which content addressing
        dedups to a log entry. Shards with a live station registered in
        :attr:`stations` additionally have the new version put on air
        at the next cycle boundary.
    tracer:
        Optional :class:`~repro.obs.events.Tracer`. When it is a
        span-capable :class:`~repro.obs.spans.SpanTracer`, every
        :meth:`plan_shards` pass becomes a ``cluster.refit`` root span
        with one ``shard.replan`` child per planned shard (slots here
        are plan *epochs* — the cluster has no air clock of its own),
        the per-shard store publishes nest under those children, and a
        live station cutover carries the child's context on the air.
    """

    def __init__(
        self,
        catalog: Sequence[tuple[str, float]] | Mapping[str, float],
        shards: int,
        *,
        partitioner: str = "hash",
        planner: str = "meta",
        channels: int = 3,
        fanout: int = 3,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        seed: int = 2000,
        sample_requests: int = 256,
        metrics: MetricsRegistry | None = None,
        perf: PerfRecorder | None = None,
        store_dir: str | Path | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if isinstance(catalog, Mapping):
            catalog = list(catalog.items())
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if len(catalog) < shards:
            raise ValueError(
                f"catalog of {len(catalog)} keys cannot fill {shards} shards"
            )
        if sample_requests < 1:
            raise ValueError("sample_requests must be >= 1")
        self.catalog: dict[str, float] = dict(catalog)
        if len(self.catalog) != len(catalog):
            raise ValueError("catalog keys must be unique")
        self.shards = shards
        self.partitioner = partitioner
        self.planner = planner
        self.channels = channels
        self.fanout = fanout
        self.bucket_size = bucket_size
        self.seed = seed
        self.sample_requests = sample_requests
        self.metrics = metrics
        self.perf = perf if perf is not None else PerfRecorder()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._spans = (
            span_tracer_of(self.tracer) if self.tracer.enabled else None
        )
        # The cluster's logical clock: one "slot" per shard.replan, so a
        # plan_shards pass over N shards is a root span of exactly N
        # slots tiled by its children.
        self._span_clock = 0

        #: shard id → live :class:`~repro.net.station.BroadcastStation`;
        #: populated by the serving harness. A registered station is
        #: cut over (``station.publish``) whenever its shard replans.
        self.stations: dict[int, object] = {}
        self.stores: dict[int, ScheduleStore] = {}
        if store_dir is not None:
            root = Path(store_dir)
            self.stores = {
                shard: ScheduleStore(
                    root / f"shard-{shard:02d}",
                    perf=self.perf,
                    tracer=self.tracer,
                )
                for shard in range(shards)
            }

        assignment = partition_catalog(catalog, shards, method=partitioner)
        self.router = ClusterRouter(assignment, shards)
        self._repair_empty_shards()
        self.plans: dict[int, ShardPlan] = {}
        self.plan_shards(note="initial plan")
        #: shard id → (host, port) of its live station; populated by the
        #: serving/loadtest harness while stations are up.
        self.endpoints: dict[int, tuple[str, int]] = {}

    def endpoint_of(self, key: str) -> tuple[str, int]:
        """(host, port) of the live station airing ``key``.

        The tuner-assignment answer of the live cluster: route the key
        through the directory, look the shard's endpoint up. Raises
        :class:`~repro.cluster.router.UnknownKeyError` for foreign keys
        and ``ValueError`` while the shard's station is not up.
        """
        shard = self.router.shard_of(key)
        try:
            return self.endpoints[shard]
        except KeyError:
            raise ValueError(
                f"shard {shard} has no live station endpoint"
            ) from None

    # -- partitioning repair -------------------------------------------------
    def _repair_empty_shards(self) -> None:
        """Deterministically fill shards a partitioner left empty.

        A station cannot air an empty catalog, so while any shard owns
        no keys, the lightest key of the currently largest shard moves
        there — lowest-id empty shard first, ties broken by key, so the
        repair is a pure function of the assignment.
        """
        while True:
            counts = self.router.counts()
            try:
                empty = counts.index(0)
            except ValueError:
                return
            donor = max(
                range(self.shards),
                key=lambda s: (counts[s], -s),
            )
            keys = self.router.keys_of(donor)
            lightest = min(keys, key=lambda k: (self.catalog[k], k))
            self.router.move([lightest], empty)

    # -- planning ------------------------------------------------------------
    def shard_items(self, shard: int) -> list[tuple[str, float]]:
        """The (key, weight) slice shard ``shard`` owns, in key order."""
        return [
            (key, self.catalog[key]) for key in self.router.keys_of(shard)
        ]

    def plan_shards(
        self,
        shard_ids: Sequence[int] | None = None,
        *,
        note: str = "replan",
    ) -> None:
        """(Re)plan the named shards — all of them when ``None``.

        Each slice goes through :func:`repro.planners.plan_catalog`
        with the cluster's planner; untouched shards keep their plans
        *and* their routing entries (the router is an explicit
        directory — see :mod:`repro.cluster.router`). With per-shard
        stores attached, each planned shard publishes a store version
        (annotated ``note``), and a shard with a live registered
        station is cut over at its next cycle boundary.
        """
        targets = list(
            range(self.shards) if shard_ids is None else shard_ids
        )
        refit_span = None
        if self._spans is not None and targets:
            start = self._span_clock
            refit_span = self._spans.begin(
                "cluster.refit",
                start,
                component="cluster",
                attrs=(("shards", len(targets)), ("note", note)),
            )
        for offset, shard in enumerate(targets):
            items = self.shard_items(shard)
            if not items:
                raise ValueError(f"shard {shard} has no keys to plan")
            labels = [key for key, _ in items]
            weights = [weight for _, weight in items]
            # Stations route wire walks by key separators, so the meta
            # planner must stay inside the wire-routable registry.
            options = {"wire_safe": True} if self.planner == "meta" else {}
            result = plan_catalog(
                labels,
                weights,
                self.channels,
                method=self.planner,
                fanout=self.fanout,
                perf=self.perf,
                **options,
            )
            self.plans[shard] = ShardPlan(
                shard=shard,
                keys=labels,
                weights=weights,
                result=result,
                program=result.compile(),
                load=float(sum(weights)),
            )
            self.perf.count("cluster.shard_plans")
            shard_span = None
            if refit_span is not None:
                epoch = self._span_clock + offset
                shard_span = refit_span.child(
                    "shard.replan",
                    epoch,
                    component="cluster",
                    attrs=(("shard", shard),),
                )
            store = self.stores.get(shard)
            if store is not None:
                record = store.publish(
                    result,
                    note=note,
                    trace=(
                        shard_span.context if shard_span is not None else None
                    ),
                    slot=self._span_clock + offset,
                )
                station = self.stations.get(shard)
                if station is not None:
                    station.publish(
                        self.plans[shard].program,
                        version=record.version,
                        trace=(
                            shard_span.context
                            if shard_span is not None
                            else None
                        ),
                    )
            if shard_span is not None:
                shard_span.end(self._span_clock + offset)
        if refit_span is not None:
            refit_span.end(self._span_clock + len(targets) - 1)
        if self._spans is not None:
            self._span_clock += len(targets)

    # -- measurement ---------------------------------------------------------
    def _sample_sizes(self) -> list[int]:
        total_load = sum(p.load for p in self.plans.values()) or 1.0
        return [
            max(16, ceil(self.sample_requests * p.load / total_load))
            for p in (self.plans[s] for s in range(self.shards))
        ]

    def measure(self) -> dict[int, float]:
        """Measure every shard's mean access time from a seeded sample.

        For each shard a weight-proportional request sample replays
        through the frame-level simulator
        (:func:`repro.io.wire_client.wire_walk` — the same walk
        the live tuners run), narrated into an
        :class:`~repro.obs.attrib.AttributionCollector`; the shard's
        cost is the collector's mean access time. With a registry
        attached, the walks also feed shard-labelled summaries and the
        ``repro_cluster_shard_cost_slots`` gauge. Seeded by
        ``(seed, shard)``: two measurements of the same shard state are
        identical, which is what makes :meth:`refit` deterministic.
        """
        costs: dict[int, float] = {}
        sizes = self._sample_sizes()
        for shard in range(self.shards):
            plan = self.plans[shard]
            cost = self._measure_shard(plan, sizes[shard])
            plan.cost = cost
            costs[shard] = cost
            if self.metrics is not None:
                self.metrics.gauge(
                    "repro_cluster_shard_cost_slots",
                    "measured mean access time of one shard's sample "
                    "replay (slots)",
                    labels={"shard": str(shard)},
                ).set(cost)
            self.perf.count("cluster.measurements")
        return costs

    def _measure_shard(self, plan: ShardPlan, requests: int) -> float:
        rng = np.random.default_rng([self.seed, 0xC1, plan.shard])
        weights = np.asarray(plan.weights, dtype=float)
        probabilities = (
            weights / weights.sum()
            if weights.sum() > 0
            else np.full(len(weights), 1.0 / len(weights))
        )
        key_draws = rng.choice(len(plan.keys), size=requests, p=probabilities)
        slot_draws = rng.integers(
            1, plan.program.cycle_length + 1, size=requests
        )
        collector = AttributionCollector(
            self.metrics,
            labels=(
                {"shard": str(plan.shard)} if self.metrics is not None
                else None
            ),
        )
        frames = encode_program(plan.program, self.bucket_size)
        for index, (draw, slot) in enumerate(zip(key_draws, slot_draws)):
            wire_walk(
                frames,
                plan.keys[int(draw)],
                int(slot),
                tracer=collector,
                walk_id=index,
            )
        walks = [walk for walk in collector.walks if not walk.abandoned]
        if not walks:
            return 0.0
        return sum(walk.access_time for walk in walks) / len(walks)

    def aggregate_cost(self) -> float:
        """Load-weighted mean access time across shards (slots).

        The cluster-level objective the refit loop minimises: each
        shard's measured cost weighted by its share of the request
        stream. Requires :meth:`measure` to have run.
        """
        total_load = sum(p.load for p in self.plans.values())
        if total_load == 0:
            return 0.0
        missing = [s for s, p in self.plans.items() if p.cost is None]
        if missing:
            raise ValueError(
                f"shards {missing} are unmeasured; call measure() first"
            )
        return (
            sum(p.load * p.cost for p in self.plans.values()) / total_load
        )

    # -- the refit loop ------------------------------------------------------
    def refit(
        self,
        *,
        max_rounds: int = 4,
        move_fraction: float = 0.25,
        min_gain: float = 1e-9,
    ) -> RefitReport:
        """Iteratively re-route hot keys until aggregate cost stops improving.

        Each round: measure every shard → pick the costliest shard →
        move its hottest ``move_fraction`` of keys (at least one,
        always leaving one behind) to the cheapest shard → replan *only*
        the two touched shards → re-measure them. A round that fails to
        improve the load-weighted aggregate by more than ``min_gain``
        is reverted — keys move back, the two shards replan to their
        previous schedules — and the loop stops. Everything is seeded,
        so the same cluster refits identically every time.
        """
        report_metrics = self.metrics
        self.measure()
        best = self.aggregate_cost()
        report = RefitReport(initial=best, final=best)
        if self.shards < 2:
            return report
        for _ in range(max_rounds):
            by_cost = sorted(
                range(self.shards),
                key=lambda s: (self.plans[s].cost, s),
            )
            source, target = by_cost[-1], by_cost[0]
            if source == target:
                break
            movable = self.shard_items(source)
            if len(movable) < 2:
                break
            count = max(1, ceil(len(movable) * move_fraction))
            count = min(count, len(movable) - 1)
            hottest = [
                key
                for key, _ in sorted(
                    movable, key=lambda kw: (-kw[1], kw[0])
                )[:count]
            ]
            before = best
            self.router.move(hottest, target)
            self.plan_shards([source, target], note="refit move")
            self.measure()
            after = self.aggregate_cost()
            accepted = after < before - min_gain
            report.rounds.append(
                RefitRound(
                    moved=tuple(hottest),
                    from_shard=source,
                    to_shard=target,
                    before=before,
                    after=after,
                    accepted=accepted,
                )
            )
            self.perf.count("cluster.refit_rounds")
            if not accepted:
                # Revert: the directory moves back and both shards
                # replan from the restored slices — bit-identical to
                # the pre-round state because planning is deterministic.
                self.router.move(hottest, source)
                self.plan_shards([source, target], note="refit revert")
                self.measure()
                best = self.aggregate_cost()
                break
            best = after
            self.perf.count("cluster.refit_accepted")
        report.final = best
        if report_metrics is not None:
            report_metrics.gauge(
                "repro_cluster_aggregate_cost_slots",
                "load-weighted mean access time across shards (slots)",
            ).set(best)
        return report

    # -- introspection -------------------------------------------------------
    def shard_rows(self) -> list[dict]:
        """Per-shard summary rows (the ``cluster plan`` table)."""
        return [self.plans[shard].to_row() for shard in range(self.shards)]
