"""Sharded multi-station clustering: partition, route, plan, refit.

The paper allocates one broadcast program; the ROADMAP's scale target
needs N of them. This package partitions the catalog/workload across N
:class:`~repro.net.station.BroadcastStation` shards
(:mod:`~repro.cluster.partition`), routes every key to exactly one
shard through an explicit directory (:mod:`~repro.cluster.router`),
plans each shard through the standard :mod:`repro.planners` facade, and
iteratively refits the split against *measured* per-shard cost
(:mod:`~repro.cluster.core`). The fleet harness
(:mod:`~repro.cluster.harness`) loadtests the whole cluster with
per-shard frame accounting and parity gates.
"""

from .core import RefitReport, RefitRound, ShardPlan, StationCluster
from .harness import (
    ClusterLoadReport,
    make_cluster_trace,
    run_cluster_loadtest,
    run_cluster_sweep,
    serve_cluster,
    write_cluster_bench_json,
)
from .partition import (
    PartitionerNotFound,
    available_partitioners,
    get_partitioner,
    hash_partition,
    partition_catalog,
    register_partitioner,
    unregister_partitioner,
    weight_balanced_partition,
)
from .router import ClusterRouter, UnknownKeyError

__all__ = [
    "StationCluster",
    "ShardPlan",
    "RefitRound",
    "RefitReport",
    "ClusterRouter",
    "UnknownKeyError",
    "PartitionerNotFound",
    "partition_catalog",
    "register_partitioner",
    "unregister_partitioner",
    "get_partitioner",
    "available_partitioners",
    "hash_partition",
    "weight_balanced_partition",
    "ClusterLoadReport",
    "make_cluster_trace",
    "serve_cluster",
    "run_cluster_loadtest",
    "run_cluster_sweep",
    "write_cluster_bench_json",
]
