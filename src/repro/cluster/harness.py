"""Multi-station fleet harness: one loadtest across every cluster shard.

The single-station harness (:mod:`repro.net.harness`) answers "how fast
is one station"; this module answers the cluster question — N stations
airing N workload partitions concurrently, one tuner fleet whose
requests route through the cluster directory, and **per-shard
accounting**: every shard keeps its own
:class:`~repro.perf.PerfRecorder`, so ``unaccounted_frames == 0`` is
gated shard by shard, not hidden in an aggregate. The same goes for
parity: each shard's fleet replays its slice of the trace through the
in-process simulator and demands bit-equality.

Why sharding scales walks/sec: every shard airs only its slice of the
catalog, so its cycle is ~``1/N`` of the monolithic cycle, and a paced
walk (``slot_duration > 0`` — real air time) finishes in ~``1/N`` of
the wall-clock. ``run_cluster_sweep`` measures exactly that curve
(aggregate walks/sec at 1, 2, 4 shards) and
:func:`write_cluster_bench_json` lands it in the BENCH envelope for
``obs regress`` to gate.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..client.protocol import RecoveryPolicy
from ..faults import FaultConfig
from ..io.wire import DEFAULT_BUCKET_SIZE
from ..obs.attrib import AttributionCollector
from ..obs.events import TeeTracer, Tracer
from ..obs.metrics import MetricsRegistry
from ..perf import PerfRecorder
from .core import StationCluster

__all__ = [
    "ClusterLoadReport",
    "make_cluster_trace",
    "serve_cluster",
    "run_cluster_loadtest",
    "run_cluster_sweep",
    "write_cluster_bench_json",
]


@asynccontextmanager
async def serve_cluster(
    cluster: StationCluster,
    *,
    host: str = "127.0.0.1",
    slot_duration: float = 0.0,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    faults: FaultConfig | None = None,
    tracer: Tracer | None = None,
):
    """Air every shard's program on its own live station.

    One :class:`~repro.net.station.BroadcastStation` per shard, each
    with its own :class:`~repro.perf.PerfRecorder` (the shard's
    recorders live in the yielded dict). While the stations are up,
    :attr:`StationCluster.endpoints` maps each shard to its (host,
    port), so :meth:`StationCluster.endpoint_of` answers the tuner
    assignment question; both are torn down again on exit.
    """
    from ..net.station import BroadcastStation

    recorders = {shard: PerfRecorder() for shard in range(cluster.shards)}
    stations = {
        shard: BroadcastStation(
            cluster.plans[shard].program,
            host=host,
            bucket_size=bucket_size,
            faults=faults,
            slot_duration=slot_duration,
            perf=recorders[shard],
            tracer=tracer,
        )
        for shard in range(cluster.shards)
    }
    started: list[int] = []
    try:
        for shard, station in stations.items():
            await station.start()
            started.append(shard)
            cluster.endpoints[shard] = (station.host, station.port)
        yield stations, recorders
    finally:
        cluster.endpoints.clear()
        for shard in started:
            await stations[shard].aclose()


def make_cluster_trace(
    cluster: StationCluster,
    requests: int,
    rng: np.random.Generator,
) -> list[tuple[int, str, int]]:
    """Draw ``requests`` (shard, key, tune_slot) triples for the fleet.

    Keys are drawn over the **whole** catalog proportionally to access
    weight — the workload does not know about shards — then routed
    through the cluster directory; each request's tune-in slot is
    uniform over *its own shard's* cycle. One rng drives the global
    draw, so the same seed yields the same workload regardless of the
    shard count — which is what makes a 1-vs-4-shard sweep compare the
    same traffic.
    """
    keys = sorted(cluster.catalog)
    weights = np.array([cluster.catalog[key] for key in keys], dtype=float)
    if weights.sum() == 0:
        probabilities = np.full(len(keys), 1.0 / len(keys))
    else:
        probabilities = weights / weights.sum()
    key_draws = rng.choice(len(keys), size=requests, p=probabilities)
    trace: list[tuple[int, str, int]] = []
    for draw in key_draws:
        key = keys[int(draw)]
        shard = cluster.router.shard_of(key)
        cycle = cluster.plans[shard].program.cycle_length
        slot = int(rng.integers(1, cycle + 1))
        trace.append((shard, key, slot))
    return trace


@dataclass
class ClusterLoadReport:
    """Everything one cluster loadtest measured, shard by shard."""

    shards: int
    tuners: int
    wall_seconds: float
    #: Total completed+abandoned walks over the *cluster* wall clock —
    #: the scaling deliverable. (Not the sum of per-shard rates: shards
    #: run concurrently, so the cluster wall is the slowest shard's.)
    aggregate_walks_per_second: float
    #: Request-weighted mean access time across shards (slots).
    mean_access_time: float
    completed: int
    abandoned: int
    #: shard id (as str, JSON-stable) → that shard's full LoadReport dict.
    per_shard: dict = field(default_factory=dict)

    @property
    def accounting_ok(self) -> bool:
        """True iff every shard balanced its frames exactly."""
        return all(
            report["checks"]["zero_unaccounted_frames"]
            for report in self.per_shard.values()
        )

    @property
    def parity_ok(self) -> bool:
        """True iff every shard's parity gate passed (or none ran)."""
        return all(
            report["checks"]["parity_exact"]
            for report in self.per_shard.values()
        )

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "tuners": self.tuners,
            "wall_seconds": self.wall_seconds,
            "aggregate_walks_per_second": self.aggregate_walks_per_second,
            "mean_access_time": self.mean_access_time,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "per_shard": self.per_shard,
            "checks": {
                "zero_unaccounted_frames": self.accounting_ok,
                "parity_exact": self.parity_ok,
            },
        }


async def run_cluster_loadtest(
    cluster: StationCluster,
    *,
    tuners: int = 1000,
    rng: np.random.Generator | None = None,
    trace: list[tuple[int, str, int]] | None = None,
    faults: FaultConfig | None = None,
    policy: RecoveryPolicy | None = None,
    slot_duration: float = 0.0,
    arrival_rate: float = 0.0,
    max_open: int = 256,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    check_parity: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    flight_recorder=None,
) -> ClusterLoadReport:
    """Air every shard concurrently and drive one routed tuner fleet.

    The global trace routes each request to its shard through the
    cluster directory; each shard then runs the standard
    :func:`repro.net.harness.run_loadtest` **with its own
    PerfRecorder**, so frame accounting and parity are per-shard gates.
    ``max_open`` is split across shards (each gets at least 8 sockets).
    With a registry attached, each shard's walks feed
    ``{shard="<id>"}``-labelled attribution summaries and its perf
    counters absorb under the same label — the per-shard rows an
    operator reaches for when one shard of four goes slow.

    ``flight_recorder`` (a :class:`~repro.obs.recorder.FlightRecorder`) tees
    each shard's events into an always-on ``shard-<id>`` ring and dumps
    a postmortem bundle the moment any shard fails its accounting or
    parity gate — the failing shard's last events, correlated, without
    anyone having asked for tracing up front.
    """
    from ..net.harness import LoadReport, run_loadtest

    if rng is None:
        rng = np.random.default_rng(cluster.seed)
    if trace is None:
        trace = make_cluster_trace(cluster, tuners, rng)
    tuners = len(trace)

    per_shard_trace: dict[int, list[tuple[str, int]]] = {
        shard: [] for shard in range(cluster.shards)
    }
    for shard, key, slot in trace:
        per_shard_trace[shard].append((key, slot))

    shard_open = max(8, max_open // max(1, cluster.shards))
    recorders = {
        shard: PerfRecorder() for shard in range(cluster.shards)
    }
    # Independent child generators per shard: each shard's Poisson
    # arrival offsets must not depend on how many requests the *other*
    # shards drew.
    shard_rngs = {
        shard: np.random.default_rng(
            [int(rng.integers(2**63)), shard]
        )
        for shard in range(cluster.shards)
    }
    shard_tracers: dict[int, Tracer | None] = {}
    for shard in range(cluster.shards):
        shard_tracer = tracer
        if metrics is not None:
            collector = AttributionCollector(
                metrics, labels={"shard": str(shard)}
            )
            shard_tracer = (
                collector
                if shard_tracer is None
                else TeeTracer(shard_tracer, collector)
            )
        if flight_recorder is not None:
            ring = flight_recorder.ring(f"shard-{shard}")
            shard_tracer = (
                ring
                if shard_tracer is None
                else TeeTracer(shard_tracer, ring)
            )
        shard_tracers[shard] = shard_tracer

    async def one_shard(shard: int) -> LoadReport:
        return await run_loadtest(
            cluster.plans[shard].program,
            rng=shard_rngs[shard],
            trace=per_shard_trace[shard],
            faults=faults,
            policy=policy,
            slot_duration=slot_duration,
            arrival_rate=arrival_rate,
            max_open=shard_open,
            bucket_size=bucket_size,
            check_parity=check_parity,
            perf=recorders[shard],
            tracer=shard_tracers[shard],
        )

    started = perf_counter()
    reports = await asyncio.gather(
        *(one_shard(shard) for shard in range(cluster.shards))
    )
    wall = perf_counter() - started

    if metrics is not None:
        for shard, recorder in recorders.items():
            metrics.absorb_perf(recorder, labels={"shard": str(shard)})

    if flight_recorder is not None:
        for shard, report in enumerate(reports):
            checks = report.to_dict()["checks"]
            if not checks["zero_unaccounted_frames"]:
                flight_recorder.trigger(
                    "unaccounted_frames",
                    detail=f"shard {shard} lost frame accounting",
                    tracer=tracer,
                )
            if not checks["parity_exact"]:
                flight_recorder.trigger(
                    "parity_failure",
                    detail=f"shard {shard} diverged from the simulator",
                    tracer=tracer,
                )

    completed = sum(report.completed for report in reports)
    abandoned = sum(report.abandoned for report in reports)
    walks = completed + abandoned
    weighted_access = sum(
        report.mean_access_time * report.completed for report in reports
    )
    return ClusterLoadReport(
        shards=cluster.shards,
        tuners=tuners,
        wall_seconds=wall,
        aggregate_walks_per_second=walks / wall if wall > 0 else 0.0,
        mean_access_time=(
            weighted_access / completed if completed else 0.0
        ),
        completed=completed,
        abandoned=abandoned,
        per_shard={
            str(shard): report.to_dict()
            for shard, report in enumerate(reports)
        },
    )


def run_cluster_sweep(
    catalog,
    shard_counts: list[int],
    *,
    tuners: int = 200,
    partitioner: str = "hash",
    planner: str = "meta",
    channels: int = 3,
    fanout: int = 3,
    seed: int = 2000,
    refit_rounds: int = 0,
    slot_duration: float = 0.0,
    arrival_rate: float = 0.0,
    max_open: int = 256,
    check_parity: bool = False,
    metrics: MetricsRegistry | None = None,
) -> dict[int, ClusterLoadReport]:
    """Loadtest the same catalog and workload at several shard counts.

    The scaling experiment behind ``make bench-cluster``: every shard
    count sees the identical catalog, seed, fleet size and pacing, so
    the aggregate walks/sec curve isolates the effect of sharding
    alone. ``refit_rounds > 0`` runs the measuring refit loop before
    each loadtest.
    """
    results: dict[int, ClusterLoadReport] = {}
    for count in shard_counts:
        cluster = StationCluster(
            catalog,
            count,
            partitioner=partitioner,
            planner=planner,
            channels=channels,
            fanout=fanout,
            seed=seed,
            metrics=metrics,
        )
        if refit_rounds > 0:
            cluster.refit(max_rounds=refit_rounds)
        results[count] = asyncio.run(
            run_cluster_loadtest(
                cluster,
                tuners=tuners,
                rng=np.random.default_rng(seed),
                slot_duration=slot_duration,
                arrival_rate=arrival_rate,
                max_open=max_open,
                check_parity=check_parity,
                metrics=metrics,
            )
        )
    return results


def write_cluster_bench_json(
    path: str,
    results: dict[int, ClusterLoadReport],
    config: dict,
    *,
    rev: str | None = None,
    timestamp: str | None = None,
) -> dict:
    """Persist one shard-count sweep as the ``BENCH_cluster.json`` record.

    The aggregate block carries the regress-gated series: per-count
    walks/sec and mean access time, plus ``speedup_2`` / ``speedup_4``
    (aggregate throughput relative to the 1-shard run, when the sweep
    includes it). ``checks.scaling_2shard`` asserts the ISSUE's ≥1.7×
    bar whenever both the 1- and 2-shard points were measured.
    """
    from ..bench_envelope import stamp_record

    walks_by_shards = {
        str(count): report.aggregate_walks_per_second
        for count, report in sorted(results.items())
    }
    access_by_shards = {
        str(count): report.mean_access_time
        for count, report in sorted(results.items())
    }
    base = results.get(1)
    speedups: dict[str, float] = {}
    if base is not None and base.aggregate_walks_per_second > 0:
        for count, report in sorted(results.items()):
            if count != 1:
                speedups[str(count)] = (
                    report.aggregate_walks_per_second
                    / base.aggregate_walks_per_second
                )
    checks = {
        "zero_unaccounted_frames": all(
            report.accounting_ok for report in results.values()
        ),
        "parity_exact": all(
            report.parity_ok for report in results.values()
        ),
    }
    if "2" in speedups:
        checks["scaling_2shard"] = speedups["2"] >= 1.7
    aggregate = {
        "walks_per_second_by_shards": walks_by_shards,
        "mean_access_time_by_shards": access_by_shards,
        "speedups": speedups,
        "checks": checks,
    }
    if "2" in speedups:
        aggregate["speedup_2shards"] = speedups["2"]
    if "4" in speedups:
        aggregate["speedup_4shards"] = speedups["4"]
    record = stamp_record(
        {
            "suite": "cluster-loadtest",
            "config": config,
            "result": {
                str(count): report.to_dict()
                for count, report in sorted(results.items())
            },
            "aggregate": aggregate,
        },
        rev=rev,
        timestamp=timestamp,
    )
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record
