"""Catalog partitioners: split one workload across N station shards.

A partitioner decides which :class:`~repro.net.station.BroadcastStation`
shard owns each catalog key. The cluster layer treats the choice as a
pluggable strategy behind a small registry — the same discipline
:mod:`repro.planners` uses for allocation strategies — so a deployment
can swap the splitting policy without touching the router, the refit
loop or the harness:

* ``"hash"`` — stable content hash (CRC-32 of the key bytes) modulo the
  shard count. Deterministic across processes and Python runs (never
  the salted built-in ``hash``), spreads keys uniformly, ignores
  weights.
* ``"weight-balanced"`` — longest-processing-time greedy: keys are
  placed heaviest-first onto the currently lightest shard, so each
  shard's *request share* (sum of access weights) is near-equal even
  under heavy Zipf skew. Deterministic tie-breaks (weight, then key).

Every partitioner maps **each key to exactly one shard** — the property
test in ``tests/cluster/test_partition.py`` holds all registered
strategies to it. Partitioners may leave a shard empty (hash collisions
on tiny catalogs); :class:`~repro.cluster.core.StationCluster` repairs
that deterministically, because a station cannot air an empty catalog.
"""

from __future__ import annotations

import zlib
from typing import Callable, Mapping, Sequence

from ..exceptions import ReproError

__all__ = [
    "PartitionerNotFound",
    "Partitioner",
    "register_partitioner",
    "unregister_partitioner",
    "get_partitioner",
    "available_partitioners",
    "partition_catalog",
    "hash_partition",
    "weight_balanced_partition",
]

#: A partitioner maps a (key, weight) catalog onto shard ids ``0..shards-1``.
Partitioner = Callable[[Sequence[tuple[str, float]], int], "dict[str, int]"]


class PartitionerNotFound(ReproError, KeyError):
    """No partitioner is registered under the requested name."""

    def __init__(self, name: str, available: list[str]) -> None:
        super().__init__(
            f"no partitioner registered as {name!r}; available: "
            f"{', '.join(available)}"
        )
        self.name = name


_REGISTRY: dict[str, Partitioner] = {}


def register_partitioner(name: str, partitioner: Partitioner | None = None):
    """Register ``partitioner`` under ``name`` (usable as a decorator)."""
    if partitioner is None:

        def decorator(func: Partitioner) -> Partitioner:
            _REGISTRY[name] = func
            return func

        return decorator
    _REGISTRY[name] = partitioner
    return partitioner


def unregister_partitioner(name: str) -> None:
    """Remove a registered partitioner (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_partitioner(name: str) -> Partitioner:
    """Resolve a registry name to its partitioner."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PartitionerNotFound(name, available_partitioners()) from None


def available_partitioners() -> list[str]:
    """Registered partitioner names, sorted."""
    return sorted(_REGISTRY)


def _validate(catalog: Sequence[tuple[str, float]], shards: int) -> None:
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not catalog:
        raise ValueError("cannot partition an empty catalog")
    keys = [key for key, _ in catalog]
    if len(set(keys)) != len(keys):
        raise ValueError("catalog keys must be unique")


def partition_catalog(
    catalog: Sequence[tuple[str, float]] | Mapping[str, float],
    shards: int,
    *,
    method: str = "hash",
) -> dict[str, int]:
    """Split ``catalog`` onto ``shards`` with the named strategy."""
    if isinstance(catalog, Mapping):
        catalog = list(catalog.items())
    return get_partitioner(method)(catalog, shards)


@register_partitioner("hash")
def hash_partition(
    catalog: Sequence[tuple[str, float]], shards: int
) -> dict[str, int]:
    """Stable CRC-32 hash of the key bytes, modulo the shard count."""
    _validate(catalog, shards)
    return {
        key: zlib.crc32(key.encode("utf-8")) % shards for key, _ in catalog
    }


@register_partitioner("weight-balanced")
def weight_balanced_partition(
    catalog: Sequence[tuple[str, float]], shards: int
) -> dict[str, int]:
    """LPT greedy: heaviest key onto the currently lightest shard.

    Ties (equal loads, equal weights) break deterministically — lowest
    shard id and lexicographically-first key — so the same catalog
    always partitions the same way.
    """
    _validate(catalog, shards)
    loads = [0.0] * shards
    assignment: dict[str, int] = {}
    for key, weight in sorted(catalog, key=lambda kw: (-kw[1], kw[0])):
        target = min(range(shards), key=lambda s: (loads[s], s))
        assignment[key] = target
        loads[target] += weight
    return assignment
