"""Seeded unreliable-channel model: bucket loss, bursts, corruption.

The paper's analysis assumes every bucket a client tunes to arrives
intact; a wireless medium does not. This module is the single source of
truth for *what the channel does to a frame*, shared by the object-level
recovery walk (:func:`repro.client.protocol.recovering_walk`),
the serving loop (:class:`repro.server.BroadcastServer`) and the wire
layer (:mod:`repro.io.wire`):

* **i.i.d. loss** — each (channel, slot) airing is independently lost
  with a per-channel probability (``loss``);
* **burst loss** — a two-state Gilbert–Elliott chain per channel
  (:class:`BurstConfig`): a *good* state using the base loss rate and a
  *bad* state with its own (much higher) rate, entered/left with the
  configured transition probabilities — the fading-channel shape i.i.d.
  models miss;
* **corruption** — a delivered frame's payload is damaged with
  probability ``corruption``; at the wire layer the per-frame checksum
  (:mod:`repro.io.wire` version-1 frames) turns this into a detected
  :class:`~repro.io.wire.WireFormatError`, so the client treats it like
  a loss (it cannot trust any bit of the frame).

Everything is driven by per-channel deterministic streams derived from
``FaultConfig.seed``: the outcome of (channel, absolute slot) is a pure
function of the config, independent of query order — the property the
seeded-determinism tests lock and the differential p=0 invariant relies
on. A :class:`FaultInjector` never touches the caller's RNG stream, so
enabling a fault model with zero probabilities leaves every other
measured number bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .obs.events import FaultInjected, Tracer

__all__ = [
    "OK",
    "LOST",
    "CORRUPT",
    "BurstConfig",
    "FaultConfig",
    "FaultInjector",
    "corrupt_frame",
    "transmit_cycle",
]

OK = "ok"
LOST = "lost"
CORRUPT = "corrupt"

_BLOCK = 512  # outcome streams extend in fixed blocks → order-independent


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class BurstConfig:
    """Gilbert–Elliott two-state burst-loss parameters (per channel).

    ``enter_bad``/``exit_bad`` are the per-slot transition probabilities
    good→bad and bad→good; ``loss_bad`` is the loss rate inside a burst
    (the good-state rate is :attr:`FaultConfig.loss`). The stationary
    loss rate is ``(enter_bad · loss_bad + exit_bad · loss_good) /
    (enter_bad + exit_bad)``.
    """

    enter_bad: float = 0.05
    exit_bad: float = 0.25
    loss_bad: float = 0.7

    def __post_init__(self) -> None:
        _check_probability(self.enter_bad, "enter_bad")
        _check_probability(self.exit_bad, "exit_bad")
        _check_probability(self.loss_bad, "loss_bad")


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one unreliable broadcast medium.

    Parameters
    ----------
    loss:
        Per-slot bucket-loss probability — a scalar applied to every
        channel, or a sequence with one entry per channel (channel ``c``
        uses entry ``c - 1``; channels beyond the sequence reuse the
        last entry). In burst mode this is the *good*-state rate.
    corruption:
        Probability that a delivered (non-lost) frame is corrupted in
        flight. Detected by the version-1 wire checksum; an object-level
        walk counts it separately but recovers the same way as a loss.
    burst:
        Optional :class:`BurstConfig` switching the loss process from
        i.i.d. to Gilbert–Elliott.
    seed:
        Root seed of the per-channel outcome streams. Same seed, same
        config → same loss/corruption pattern, always.
    """

    loss: float | Sequence[float] = 0.0
    corruption: float = 0.0
    burst: BurstConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.loss, (int, float)):
            _check_probability(float(self.loss), "loss")
        else:
            rates = tuple(float(rate) for rate in self.loss)
            if not rates:
                raise ValueError("per-channel loss sequence must be non-empty")
            for rate in rates:
                _check_probability(rate, "loss")
            object.__setattr__(self, "loss", rates)
        _check_probability(self.corruption, "corruption")

    def loss_for(self, channel: int) -> float:
        """Good-state loss probability of 1-based ``channel``."""
        if isinstance(self.loss, tuple):
            index = min(channel - 1, len(self.loss) - 1)
            return self.loss[index]
        return float(self.loss)

    @property
    def is_lossless(self) -> bool:
        """True when no airing can ever be lost or corrupted."""
        if self.corruption > 0.0:
            return False
        if isinstance(self.loss, tuple):
            base_lossy = any(rate > 0.0 for rate in self.loss)
        else:
            base_lossy = self.loss > 0.0
        if base_lossy:
            return False
        if self.burst is not None:
            return not (self.burst.enter_bad > 0.0 and self.burst.loss_bad > 0.0)
        return True


class FaultInjector:
    """Materialised per-(channel, slot) outcomes of a :class:`FaultConfig`.

    ``outcome(channel, slot)`` answers what happened to the airing of
    1-based ``channel`` at 1-based absolute ``slot``: :data:`OK`,
    :data:`LOST` or :data:`CORRUPT`. Outcomes are generated lazily in
    fixed-size blocks from per-channel ``default_rng([seed, channel])``
    streams and cached, so the answer is a pure function of the config —
    query order, interleaving across channels, and sharing one injector
    between many clients all leave the pattern untouched (every client
    listening to the same airing sees the same fate, as on real air).

    ``shifted(origin)`` returns a view whose slot axis is displaced by
    ``origin`` absolute slots while sharing this injector's cache — the
    serving loop hands each cycle's clients a view anchored at the
    cycle's start so their cycle-relative walks index global air time.

    When a ``tracer`` is attached, every non-OK query answer is
    narrated as a :class:`~repro.obs.events.FaultInjected` event at the
    *global* absolute slot (``origin + slot``), so shifted per-cycle
    views land on one shared slot axis in the trace.
    """

    def __init__(
        self,
        config: FaultConfig,
        *,
        origin: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.origin = origin
        self.tracer = tracer
        self._outcomes: dict[int, list[str]] = {}
        self._states: dict[int, bool] = {}  # per-channel "in bad state"

    # -- queries ------------------------------------------------------------
    def outcome(self, channel: int, slot: int) -> str:
        """Fate of the airing on ``channel`` at absolute ``slot`` (1-based)."""
        if channel < 1 or slot < 1:
            raise ValueError("channel and slot are 1-based")
        if self.config.is_lossless:
            return OK
        index = self.origin + slot - 1
        pattern = self._outcomes.setdefault(channel, [])
        if index >= len(pattern):
            self._extend(channel, pattern, index + 1)
        fate = pattern[index]
        if fate != OK and self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                FaultInjected(
                    channel=channel, absolute_slot=index + 1, fate=fate
                )
            )
        return fate

    def lost(self, channel: int, slot: int) -> bool:
        """Whether the airing is unusable (lost *or* corrupt)."""
        return self.outcome(channel, slot) != OK

    def shifted(self, origin: int) -> "FaultInjector":
        """A view of the same air displaced by ``origin`` absolute slots."""
        view = FaultInjector.__new__(FaultInjector)
        view.config = self.config
        view.origin = self.origin + origin
        view.tracer = self.tracer
        view._outcomes = self._outcomes
        view._states = self._states
        return view

    # -- stream generation --------------------------------------------------
    def _extend(self, channel: int, pattern: list[str], needed: int) -> None:
        """Grow ``channel``'s outcome stream to at least ``needed`` slots.

        Always extends in whole :data:`_BLOCK`-slot blocks with exactly
        three uniform draws per slot (state transition, loss,
        corruption), so the generated pattern never depends on how the
        requests that triggered growth were sized or ordered.
        """
        config = self.config
        blocks = -(-max(needed - len(pattern), 1) // _BLOCK)
        count = blocks * _BLOCK
        stream = self._stream(channel, start=len(pattern))
        draws = stream.random((count, 3))
        loss_good = config.loss_for(channel)
        burst = config.burst
        bad = self._states.get(channel, False)
        for u_state, u_loss, u_corrupt in draws:
            if burst is not None:
                bad = (
                    (not (u_state < burst.exit_bad))
                    if bad
                    else (u_state < burst.enter_bad)
                )
            loss_rate = burst.loss_bad if (burst is not None and bad) else (
                loss_good
            )
            if u_loss < loss_rate:
                pattern.append(LOST)
            elif u_corrupt < config.corruption:
                pattern.append(CORRUPT)
            else:
                pattern.append(OK)
        self._states[channel] = bad

    def _stream(self, channel: int, start: int) -> np.random.Generator:
        """The channel's generator advanced to slot index ``start``.

        Each slot consumes exactly three ``random()`` doubles, so a
        fresh generator skipped ``3 · start`` doubles reproduces the
        stream's continuation no matter how earlier blocks were sized.
        """
        stream = np.random.default_rng([self.config.seed, channel])
        if start:
            stream.random((start, 3))
        return stream

    # -- diagnostics ---------------------------------------------------------
    def pattern(self, channel: int, slots: int) -> list[str]:
        """The first ``slots`` outcomes on ``channel`` (origin-relative)."""
        return [self.outcome(channel, slot) for slot in range(1, slots + 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector seed={self.config.seed} origin={self.origin} "
            f"channels={sorted(self._outcomes)}>"
        )


def corrupt_frame(frame: bytes, rng: np.random.Generator) -> bytes:
    """Flip one random byte of ``frame`` — guaranteed-detectable damage.

    The XOR mask is drawn from 1..255 so the byte always changes; the
    version-1 wire checksum therefore always catches the damage (the
    checksum field itself may be the flipped byte — still a mismatch).
    """
    if not frame:
        return frame
    position = int(rng.integers(0, len(frame)))
    mask = int(rng.integers(1, 256))
    damaged = bytearray(frame)
    damaged[position] ^= mask
    return bytes(damaged)


def transmit_cycle(
    frames: list[list[bytes]],
    injector: FaultInjector,
    *,
    rng: np.random.Generator | None = None,
) -> list[list[bytes | None]]:
    """Push one encoded cycle through the unreliable channel.

    Returns the received grid: ``None`` where the airing was lost,
    byte-damaged frames where it was corrupted (``rng`` picks the
    damage; defaults to a generator seeded from the fault config),
    untouched frames otherwise.
    """
    if rng is None:
        rng = np.random.default_rng([injector.config.seed, 0xC0])
    received: list[list[bytes | None]] = []
    for channel_index, row in enumerate(frames, start=1):
        out_row: list[bytes | None] = []
        for slot_index, frame in enumerate(row, start=1):
            fate = injector.outcome(channel_index, slot_index)
            if fate == LOST:
                out_row.append(None)
            elif fate == CORRUPT:
                out_row.append(corrupt_frame(frame, rng))
            else:
                out_row.append(frame)
        received.append(out_row)
    return received
