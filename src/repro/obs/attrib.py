"""Per-walk latency attribution: *where* did the access time go?

The protocol measures access time as one number — slots from tune-in
through the data bucket — and the paper's objective (formula (1))
averages it. This module explains it instead: every walk's access time
decomposes **additively and exactly** into five phases,

``probe``
    slots from tune-in through reading the index root — the initial
    channel-1 probe, the doze to the next cycle, and the root read
    (equals the protocol's ``probe_wait`` on a lossless walk);
``descent``
    slots spent *reading* index and data buckets below the root;
``hop``
    doze slots crossing a channel switch (the wait between reading a
    pointer on one channel and its target airing on another);
``retry``
    every slot a fault cost — failed reads themselves, the doze to a
    lost bucket's next airing or back to the retry parent, and the
    unspent tail of an abandoned walk's deadline;
``slack``
    same-channel doze between successful reads below the root — dead
    air the index layout forces between a pointer and its target.

The decomposition is driven purely by the ``slot_read`` /
``walk_finished`` trace vocabulary of :mod:`repro.obs.events`, which
all three walk paths emit (:func:`~repro.client.protocol.object_walk`,
:func:`~repro.client.protocol.recovering_walk`, and the
frame/socket walks driving :class:`~repro.client.walk.PointerWalk`), so
one attributor serves live JSONL traces, ring buffers, and in-process
runs alike.

**Exactness invariant** — for every walk::

    probe + descent + hop + retry + slack == access_time

holds *bit-identically* against the measured record, by construction:
each read claims its preceding doze gap plus its own slot, the gaps
partition the walk's timeline, and an abandoned walk's trailing slots
(from its last read to the deadline) are charged to ``retry``. The
differential suite locks this across all three paths, under injected
loss, and for abandoned walks; :class:`WalkAttribution.exact` is the
per-walk check and the ``obs attrib`` CLI exits non-zero if any walk
violates it.

Walks are reassembled from interleaved fleet traces by the events'
``walk`` correlation id; events carrying :data:`~repro.obs.events.NO_WALK`
(old traces) fall back to per-key grouping, where ``walk_finished``
closes the key's active walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError
from .digest import QuantileDigest
from .events import NO_WALK, SlotRead, TraceEvent, WalkFinished

__all__ = [
    "PHASES",
    "WalkAttribution",
    "AttributionError",
    "AttributionBuilder",
    "AttributionCollector",
    "attribute_events",
    "attribute_walk",
    "format_attribution",
]

#: Phase names, in timeline order. Every slot of every walk's access
#: time lands in exactly one.
PHASES = ("probe", "descent", "hop", "retry", "slack")

_OK = "ok"


class AttributionError(ReproError):
    """A trace could not be folded into exact per-walk phases."""


@dataclass(frozen=True)
class WalkAttribution:
    """One walk's access time, split into the five phases.

    ``walk`` is the correlation id (:data:`~repro.obs.events.NO_WALK`
    when the trace carried none); the measured fields (``access_time``,
    ``tuning_time``, ``abandoned``) are copied from the walk's
    ``walk_finished`` event for cross-checking.
    """

    key: str
    walk: int
    tune_slot: int
    access_time: int
    tuning_time: int
    abandoned: bool
    probe: int
    descent: int
    hop: int
    retry: int
    slack: int

    @property
    def phases(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in PHASES}

    @property
    def total(self) -> int:
        """Sum of the phases — must equal ``access_time`` exactly."""
        return self.probe + self.descent + self.hop + self.retry + self.slack

    @property
    def exact(self) -> bool:
        """The exactness invariant: phases partition the access time."""
        return self.total == self.access_time


class AttributionBuilder:
    """Streaming fold of one walk's reads into its phase breakdown.

    Feed the walk's events in order (:meth:`on_read` for each
    ``slot_read``, then :meth:`finish` with the ``walk_finished``
    figures); state is O(1) — no event list is retained — so a
    million-walk trace attributes in constant memory per in-flight
    walk.
    """

    __slots__ = (
        "key",
        "walk",
        "tune_slot",
        "reads",
        "probe",
        "descent",
        "hop",
        "retry",
        "slack",
        "_prev_slot",
        "_prev_channel",
        "_prev_failed",
        "_ok_reads",
    )

    def __init__(self, key: str, walk: int = NO_WALK) -> None:
        self.key = key
        self.walk = walk
        self.tune_slot: int | None = None
        self.reads = 0
        self.probe = 0
        self.descent = 0
        self.hop = 0
        self.retry = 0
        self.slack = 0
        self._prev_slot = 0
        self._prev_channel = 1
        self._prev_failed = False
        self._ok_reads = 0

    def on_read(self, channel: int, absolute_slot: int, outcome: str) -> None:
        """Fold one read: its doze gap, then the read slot itself.

        The gap since the previous read is charged to the phase that
        *caused* the doze — recovery if the previous read failed, probe
        while still waiting for the root, hop across a channel switch,
        slack otherwise — and the read slot goes to retry (failed),
        probe (the first two successful reads: initial probe and index
        root) or descent (everything below the root).
        """
        if self.tune_slot is None:
            # The first read *is* the tune-in: every walk path starts by
            # reading channel 1 at its tune slot.
            self.tune_slot = absolute_slot
            self._prev_slot = absolute_slot - 1
        gap = absolute_slot - self._prev_slot - 1
        if gap < 0:
            raise AttributionError(
                f"walk {self.walk} ({self.key!r}): reads out of order at "
                f"absolute slot {absolute_slot}"
            )
        if gap:
            if self._prev_failed:
                self.retry += gap
            elif self._ok_reads < 2:
                self.probe += gap
            elif channel != self._prev_channel:
                self.hop += gap
            else:
                self.slack += gap
        failed = outcome != _OK
        if failed:
            self.retry += 1
        elif self._ok_reads < 2:
            self.probe += 1
            self._ok_reads += 1
        else:
            self.descent += 1
            self._ok_reads += 1
        self.reads += 1
        self._prev_slot = absolute_slot
        self._prev_channel = channel
        self._prev_failed = failed

    def finish(
        self,
        *,
        tune_slot: int,
        access_time: int,
        tuning_time: int,
        abandoned: bool,
    ) -> WalkAttribution:
        """Close the walk against its measured ``walk_finished`` figures.

        Charges an abandoned walk's unread tail (last read through the
        deadline) to ``retry`` and cross-checks the trace's internal
        consistency: the first read must sit at the measured tune slot
        and the read count must equal the measured tuning time.
        """
        if self.tune_slot is None or self.tune_slot != tune_slot:
            raise AttributionError(
                f"walk {self.walk} ({self.key!r}): finished at tune slot "
                f"{tune_slot} but its first read was at {self.tune_slot}"
            )
        if self.reads != tuning_time:
            raise AttributionError(
                f"walk {self.walk} ({self.key!r}): {self.reads} traced "
                f"reads but measured tuning time {tuning_time}"
            )
        final = tune_slot + access_time - 1
        trailing = final - self._prev_slot
        if trailing < 0:
            raise AttributionError(
                f"walk {self.walk} ({self.key!r}): last read at "
                f"{self._prev_slot} lies past the measured end {final}"
            )
        if trailing:
            # Only a walk that gave up stops short of its final slot.
            self.retry += trailing
        return WalkAttribution(
            key=self.key,
            walk=self.walk,
            tune_slot=tune_slot,
            access_time=access_time,
            tuning_time=tuning_time,
            abandoned=abandoned,
            probe=self.probe,
            descent=self.descent,
            hop=self.hop,
            retry=self.retry,
            slack=self.slack,
        )


def attribute_walk(
    reads: list[tuple[int, int, str]],
    *,
    key: str = "",
    walk: int = NO_WALK,
    access_time: int,
    tuning_time: int,
    abandoned: bool = False,
) -> WalkAttribution:
    """Attribute one walk given its ``(channel, absolute_slot, outcome)`` reads."""
    builder = AttributionBuilder(key, walk)
    for channel, absolute_slot, outcome in reads:
        builder.on_read(channel, absolute_slot, outcome)
    if builder.tune_slot is None:
        raise AttributionError("a walk with no reads cannot be attributed")
    return builder.finish(
        tune_slot=builder.tune_slot,
        access_time=access_time,
        tuning_time=tuning_time,
        abandoned=abandoned,
    )


class _GroupState:
    """Routes interleaved events to per-walk builders."""

    __slots__ = ("by_walk", "by_key")

    def __init__(self) -> None:
        self.by_walk: dict[int, AttributionBuilder] = {}
        self.by_key: dict[str, AttributionBuilder] = {}

    def builder(self, key: str, walk: int) -> AttributionBuilder:
        if walk != NO_WALK:
            found = self.by_walk.get(walk)
            if found is None:
                found = self.by_walk[walk] = AttributionBuilder(key, walk)
            return found
        found = self.by_key.get(key)
        if found is None:
            found = self.by_key[key] = AttributionBuilder(key)
        return found

    def close(self, key: str, walk: int) -> AttributionBuilder | None:
        if walk != NO_WALK:
            return self.by_walk.pop(walk, None)
        return self.by_key.pop(key, None)

    def open_walks(self) -> int:
        return len(self.by_walk) + len(self.by_key)


def attribute_events(events) -> list[WalkAttribution]:
    """Fold a trace into per-walk attributions, in completion order.

    ``events`` may yield raw JSONL records (dicts, as
    :func:`~repro.obs.events.read_events` streams them) or typed
    :class:`~repro.obs.events.TraceEvent` objects (a ring buffer's
    window) — the fold is streaming either way and retains only the
    in-flight walks' O(1) builders. Events of other kinds (airings,
    replans, fault narration) pass through untouched; walks still open
    when the trace ends (a truncated file, a live tail) are dropped,
    since without ``walk_finished`` there is no measured number to be
    exact against.
    """
    state = _GroupState()
    finished: list[WalkAttribution] = []
    for event in events:
        if isinstance(event, dict):
            kind = event.get("kind")
            get = event.get
        else:
            kind = event.kind
            get = lambda name, default=None: getattr(event, name, default)  # noqa: E731
        if kind == "slot_read":
            walk = get("walk", NO_WALK)
            state.builder(get("key"), walk).on_read(
                get("channel"), get("absolute_slot"), get("outcome", _OK)
            )
        elif kind == "walk_finished":
            builder = state.close(get("key"), get("walk", NO_WALK))
            if builder is None:
                raise AttributionError(
                    f"walk_finished for {get('key')!r} without any reads"
                )
            finished.append(
                builder.finish(
                    tune_slot=get("tune_slot"),
                    access_time=get("access_time"),
                    tuning_time=get("tuning_time"),
                    abandoned=bool(get("abandoned", False)),
                )
            )
    return finished


class AttributionCollector:
    """A :class:`~repro.obs.events.Tracer` that attributes walks live.

    Tee it alongside (or instead of) a recording tracer and every
    completed walk lands in :attr:`walks` as a
    :class:`WalkAttribution`; when a
    :class:`~repro.obs.metrics.MetricsRegistry` is supplied, each
    completed walk also feeds the fleet's quantile summaries —
    ``repro_walk_access_time_slots``, ``repro_walk_tuning_time_reads``
    and one ``repro_walk_phase_<phase>_slots`` per phase — plus the
    ``repro_walk_completed_total`` / ``repro_walk_abandoned_total``
    counters. Abandoned walks are counted but kept out of the latency
    summaries, matching how the harness keeps them out of its means.

    The collector only *observes* trace events; it never touches the
    walk's own state, so enabling it cannot change a measured number —
    the zero-overhead differential in the test suite locks exactly
    that.
    """

    enabled = True

    def __init__(self, registry=None, *, labels=None) -> None:
        self.registry = registry
        self.labels = dict(labels) if labels else None
        self.walks: list[WalkAttribution] = []
        self._state = _GroupState()
        if registry is not None:
            # Declare the full vocabulary up front so an idle scrape
            # already exposes every series. ``labels`` scope every
            # series to one child of its family — the cluster layer
            # runs one collector per shard with
            # ``labels={"shard": "2"}`` and the summaries stay apart.
            registry.summary(
                "repro_walk_access_time_slots",
                "access time per completed walk (slots)",
                labels=self.labels,
            )
            registry.summary(
                "repro_walk_tuning_time_reads",
                "tuning time per completed walk (bucket reads)",
                labels=self.labels,
            )
            for phase in PHASES:
                registry.summary(
                    f"repro_walk_phase_{phase}_slots",
                    f"slots attributed to the {phase} phase per completed walk",
                    labels=self.labels,
                )
            registry.counter(
                "repro_walk_completed_total",
                "walks that reached their data",
                labels=self.labels,
            )
            registry.counter(
                "repro_walk_abandoned_total",
                "walks that hit the give-up bound",
                labels=self.labels,
            )

    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, SlotRead):
            self._state.builder(event.key, event.walk).on_read(
                event.channel, event.absolute_slot, event.outcome
            )
        elif isinstance(event, WalkFinished):
            builder = self._state.close(event.key, event.walk)
            if builder is None:
                raise AttributionError(
                    f"walk_finished for {event.key!r} without any reads"
                )
            attribution = builder.finish(
                tune_slot=event.tune_slot,
                access_time=event.access_time,
                tuning_time=event.tuning_time,
                abandoned=event.abandoned,
            )
            self.walks.append(attribution)
            if self.registry is not None:
                self._feed(attribution)

    def _feed(self, attribution: WalkAttribution) -> None:
        registry = self.registry
        labels = self.labels
        if attribution.abandoned:
            registry.counter(
                "repro_walk_abandoned_total", labels=labels
            ).inc()
            return
        registry.counter("repro_walk_completed_total", labels=labels).inc()
        registry.summary(
            "repro_walk_access_time_slots", labels=labels
        ).observe(attribution.access_time)
        registry.summary(
            "repro_walk_tuning_time_reads", labels=labels
        ).observe(attribution.tuning_time)
        for phase in PHASES:
            registry.summary(
                f"repro_walk_phase_{phase}_slots", labels=labels
            ).observe(getattr(attribution, phase))


def format_attribution(
    attributions: list[WalkAttribution], *, slowest: int = 5
) -> str:
    """Human-readable phase table for one trace's attributions.

    One row per phase with its fleet-wide total, share of all access
    time, per-walk mean and deterministic p50/p95/p99 (via
    :class:`~repro.obs.digest.QuantileDigest`), a totals row asserting
    the exactness invariant, and the ``slowest`` walks broken down
    individually — the "why was *this* one slow" view.
    """
    completed = [a for a in attributions if not a.abandoned]
    abandoned = len(attributions) - len(completed)
    lines: list[str] = []
    header = (
        f"{'phase':<10} {'slots':>10} {'share':>7} {'mean':>8} "
        f"{'p50':>6} {'p95':>6} {'p99':>6}"
    )
    lines.append(
        f"{len(attributions)} walks attributed "
        f"({len(completed)} completed, {abandoned} abandoned)"
    )
    lines.append(header)
    lines.append("-" * len(header))
    grand_total = sum(a.access_time for a in completed)
    for phase in PHASES:
        values = [getattr(a, phase) for a in completed]
        total = sum(values)
        digest = QuantileDigest()
        digest.observe_many(values)
        share = 100.0 * total / grand_total if grand_total else 0.0
        mean = total / len(values) if values else 0.0
        p50, p95, p99 = digest.quantiles((0.5, 0.95, 0.99))
        lines.append(
            f"{phase:<10} {total:>10} {share:>6.1f}% {mean:>8.2f} "
            f"{p50:>6} {p95:>6} {p99:>6}"
        )
    lines.append("-" * len(header))
    exact = all(a.exact for a in attributions)
    lines.append(
        f"{'total':<10} {grand_total:>10} {'100.0%' if grand_total else '0.0%':>7}"
        f"   exactness: {'ok' if exact else 'VIOLATED'}"
    )
    ranked = sorted(completed, key=lambda a: a.access_time, reverse=True)
    if ranked and slowest > 0:
        lines.append("")
        lines.append(f"slowest {min(slowest, len(ranked))} walks:")
        for a in ranked[:slowest]:
            walk_tag = f"#{a.walk}" if a.walk != NO_WALK else "-"
            breakdown = " ".join(
                f"{phase}={getattr(a, phase)}"
                for phase in PHASES
                if getattr(a, phase)
            )
            lines.append(
                f"  {walk_tag:>6} {a.key:<8} access={a.access_time:<5} "
                f"{breakdown}"
            )
    return "\n".join(lines)
