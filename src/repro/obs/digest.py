"""Deterministic fixed-bucket quantile digests for slot-valued data.

The paper's objective is a *mean* — formula (1) weights each item's
expected delay — but a fleet operator asks about tails: what is the
p99 access time right now, and which phase of the walk is it spent in?
Answering that from ``/metrics`` needs a quantile sketch that is

* **slot-valued** — access, tuning and per-phase times are integers
  (slots), never fractions, so the sketch bins integers;
* **integer-exact at small n** — while the number of *distinct* values
  fits in the bin budget every quantile is the exact nearest-rank
  order statistic, not an approximation (the regime every test and
  most real scrapes live in);
* **deterministic and order-independent** — two scrapes of the same
  multiset render byte-identical exposition regardless of arrival
  order, which is what lets the bench-regression sentinel diff them;
* **mergeable across shards** — a fleet of stations can each keep a
  digest and the merged digest is *exactly* the digest of the
  concatenated stream, not an approximation of it.

The construction is a power-of-two coarsening grid: values are counted
in bins of width ``w`` (initially 1, so bins are exact values); when
the number of occupied bins would exceed ``max_bins`` the width doubles
and bins pairwise collapse (``value // w`` re-derived). Because the
occupied-bin count at any width is monotone in the observed multiset,
the final width is *the minimal power of two whose binning of the full
multiset fits the budget* — a pure function of the multiset, which is
the whole determinism argument. Merging rebins both sides to the wider
grid, adds counts, and re-coarsens; that equals digesting the
concatenation for the same reason.

Quantiles are nearest-rank (``rank = max(1, ceil(q·count))``) over the
sorted bins, reported as the matching bin's lower bound — at width 1
that is exactly the order statistic. The exact ``count`` and ``total``
are tracked separately and never coarsened, so ``_sum``/``_count``
exposition lines are always precise.
"""

from __future__ import annotations

from math import ceil
from typing import Iterable, Iterator

__all__ = ["QuantileDigest", "DEFAULT_QUANTILES"]

#: The quantile points a :class:`~repro.obs.metrics.Summary` exposes by
#: default — the median and the two tails operators alert on.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class QuantileDigest:
    """Mergeable integer quantile sketch over a power-of-two grid.

    Parameters
    ----------
    max_bins:
        Budget on occupied bins. Width doubles whenever the budget
        would be exceeded, so memory is ``O(max_bins)`` regardless of
        stream length and the worst-case quantile error is one (final)
        bin width. The default comfortably holds every distinct access
        time of the demo programs at width 1, i.e. exactly.
    """

    __slots__ = ("max_bins", "width", "count", "total", "_bins")

    def __init__(self, max_bins: int = 256) -> None:
        if max_bins < 1:
            raise ValueError("max_bins must be >= 1")
        self.max_bins = max_bins
        self.width = 1
        self.count = 0
        self.total = 0
        self._bins: dict[int, int] = {}

    # -- ingest -------------------------------------------------------------
    def observe(self, value: int, weight: int = 1) -> None:
        """Count ``weight`` occurrences of the non-negative integer ``value``."""
        if value != int(value):
            raise ValueError(f"digest values are integer slots, got {value!r}")
        value = int(value)
        if value < 0:
            raise ValueError("digest values must be >= 0")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self.count += weight
        self.total += value * weight
        bin_index = value // self.width
        self._bins[bin_index] = self._bins.get(bin_index, 0) + weight
        self._coarsen()

    def observe_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.observe(value)

    def _coarsen(self) -> None:
        while len(self._bins) > self.max_bins:
            self.width *= 2
            collapsed: dict[int, int] = {}
            for bin_index, bin_count in self._bins.items():
                half = bin_index // 2
                collapsed[half] = collapsed.get(half, 0) + bin_count
            self._bins = collapsed

    # -- merge --------------------------------------------------------------
    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into ``self`` (in place) and return ``self``.

        Exactly equivalent to having observed both streams in one
        digest: both sides rebin to the wider grid, counts add, and the
        result coarsens if the union needs it. Requires equal
        ``max_bins`` (different budgets would make the result depend on
        merge order).
        """
        if other.max_bins != self.max_bins:
            raise ValueError(
                f"cannot merge digests with different budgets "
                f"({self.max_bins} vs {other.max_bins})"
            )
        target = max(self.width, other.width)
        merged: dict[int, int] = {}
        for digest in (self, other):
            shift = target // digest.width
            for bin_index, bin_count in digest._bins.items():
                rebinned = bin_index // shift
                merged[rebinned] = merged.get(rebinned, 0) + bin_count
        self.width = target
        self._bins = merged
        self.count += other.count
        self.total += other.total
        self._coarsen()
        return self

    # -- query --------------------------------------------------------------
    def quantile(self, q: float) -> int:
        """Nearest-rank ``q``-quantile, as the matching bin's lower bound.

        ``q`` is clamped to [0, 1]; an empty digest reports 0. While
        ``width == 1`` this is the exact order statistic.
        """
        if self.count == 0:
            return 0
        q = min(max(q, 0.0), 1.0)
        rank = max(1, ceil(q * self.count))
        cumulative = 0
        last = 0
        for bin_index in sorted(self._bins):
            last = bin_index
            cumulative += self._bins[bin_index]
            if cumulative >= rank:
                break
        return last * self.width

    def quantiles(self, qs: Iterable[float]) -> list[int]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        """Exact mean of the observed stream (``total`` is never binned)."""
        return self.total / self.count if self.count else 0.0

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Yield ``(bin_lower_bound, count)`` in ascending value order."""
        for bin_index in sorted(self._bins):
            yield bin_index * self.width, self._bins[bin_index]

    # -- shard transport ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form for shipping a shard's digest to a merger."""
        return {
            "max_bins": self.max_bins,
            "width": self.width,
            "count": self.count,
            "total": self.total,
            "bins": {str(k): v for k, v in sorted(self._bins.items())},
        }

    @classmethod
    def from_dict(cls, record: dict) -> "QuantileDigest":
        digest = cls(max_bins=record["max_bins"])
        digest.width = int(record["width"])
        digest.count = int(record["count"])
        digest.total = int(record["total"])
        digest._bins = {int(k): int(v) for k, v in record["bins"].items()}
        return digest
