"""Reconstruct per-(channel, slot) timelines from traces, and diff them.

A JSONL trace (:class:`~repro.obs.events.JsonlTracer`) is a flat event
stream; operations questions are per *coordinate*: what aired on
channel 2 at slot 47, who read it, what did the fault model do to it?
:func:`build_timeline` folds a stream into exactly that — one
:class:`SlotCell` per (channel, absolute slot) touched by any event —
plus walk-level aggregates.

:func:`diff_timelines` then compares two reconstructions on their
*read* activity. Reads are emitted by the shared
:class:`~repro.client.walk.PointerWalk` (so a live socket fleet and the
in-process simulator narrate in the same vocabulary and the same
slot-denominated coordinates), and on a lossless channel the walks are
bit-identical — which makes the first divergent cell of a
live-vs-simulator or lossy-vs-lossless diff the exact place the air
first departed from the model. That turns the loadtest's binary parity
verdict into an explanation: not "MISMATCH" but "channel 2, slot 47:
live read it twice (first outcome: lost), simulator once".

``repro.cli obs timeline`` and ``obs diff`` are the command-line faces
of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import event_to_dict, read_events

__all__ = [
    "SlotCell",
    "Timeline",
    "CellDivergence",
    "TimelineDiff",
    "build_timeline",
    "load_timeline",
    "diff_timelines",
    "diff_trace_files",
    "format_timeline",
    "format_diff",
]


@dataclass
class SlotCell:
    """Everything one (channel, absolute slot) coordinate experienced."""

    channel: int
    slot: int
    #: airings by fate ("ok"/"lost"/"corrupt") — from SlotAired events
    aired: dict[str, int] = field(default_factory=dict)
    #: fault-model decisions by fate — from FaultInjected events
    faults: dict[str, int] = field(default_factory=dict)
    #: receiver reads as a counted multiset: (key, outcome) → count.
    #: Counts, not a list: a hot cell (the channel-1 probe slot of a
    #: big fleet) is read by thousands of walks but touches only a
    #: handful of distinct (key, outcome) pairs, so the timeline's
    #: memory stays proportional to distinct activity, not trace size.
    read_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: frames dropped before any receiver (UDP overload)
    drops: int = 0
    #: channel hops that landed here
    hops: int = 0

    def count_read(self, key: str, outcome: str) -> None:
        pair = (key, outcome)
        self.read_counts[pair] = self.read_counts.get(pair, 0) + 1

    @property
    def reads(self) -> list[tuple[str, str]]:
        """The cell's reads expanded to (key, outcome) pairs, sorted."""
        return [
            pair
            for pair in sorted(self.read_counts)
            for _ in range(self.read_counts[pair])
        ]

    @property
    def total_reads(self) -> int:
        return sum(self.read_counts.values())

    @property
    def read_signature(self) -> tuple[tuple[str, str], ...]:
        """Order-independent summary of the cell's read activity.

        A concurrent fleet finishes walks in nondeterministic order, so
        two traces of the same seeded run list a cell's reads in
        different sequences; the sorted multiset is what must agree.
        """
        return tuple(self.reads)

    @property
    def fate(self) -> str:
        """The airing's dominant fate ("ok" when nothing went wrong)."""
        for fate in ("lost", "corrupt"):
            if self.aired.get(fate) or self.faults.get(fate):
                return fate
        return "ok"


@dataclass
class Timeline:
    """A trace folded into coordinates plus walk-level aggregates."""

    cells: dict[tuple[int, int], SlotCell] = field(default_factory=dict)
    walks: int = 0
    abandoned: int = 0
    access_time_total: int = 0
    tuning_time_total: int = 0
    retries: int = 0
    replans: int = 0
    events: int = 0
    unknown_events: int = 0

    def cell(self, channel: int, slot: int) -> SlotCell:
        key = (channel, slot)
        found = self.cells.get(key)
        if found is None:
            found = self.cells[key] = SlotCell(channel=channel, slot=slot)
        return found

    @property
    def mean_access_time(self) -> float:
        done = self.walks - self.abandoned
        return self.access_time_total / done if done else 0.0

    @property
    def mean_tuning_time(self) -> float:
        done = self.walks - self.abandoned
        return self.tuning_time_total / done if done else 0.0

    def ordered_cells(self) -> list[SlotCell]:
        """Cells in air order: by slot, then channel."""
        return [
            self.cells[key]
            for key in sorted(self.cells, key=lambda k: (k[1], k[0]))
        ]


def build_timeline(records) -> Timeline:
    """Fold an event stream (dicts or typed events) into a :class:`Timeline`."""
    timeline = Timeline()
    for record in records:
        if not isinstance(record, dict):
            record = event_to_dict(record)  # typed event from a ring buffer
        timeline.events += 1
        kind = record.get("kind")
        if kind == "slot_read":
            cell = timeline.cell(record["channel"], record["absolute_slot"])
            cell.count_read(
                record.get("key", ""), record.get("outcome", "ok")
            )
        elif kind == "slot_aired":
            cell = timeline.cell(record["channel"], record["absolute_slot"])
            fate = record.get("fate", "ok")
            cell.aired[fate] = cell.aired.get(fate, 0) + 1
        elif kind == "fault_injected":
            cell = timeline.cell(record["channel"], record["absolute_slot"])
            fate = record.get("fate", "lost")
            cell.faults[fate] = cell.faults.get(fate, 0) + 1
        elif kind == "frame_dropped":
            cell = timeline.cell(record["channel"], record["absolute_slot"])
            cell.drops += 1
        elif kind == "channel_hop":
            cell = timeline.cell(
                record["to_channel"], record["absolute_slot"]
            )
            cell.hops += 1
        elif kind == "walk_finished":
            timeline.walks += 1
            timeline.retries += record.get("retries", 0)
            if record.get("abandoned"):
                timeline.abandoned += 1
            else:
                timeline.access_time_total += record.get("access_time", 0)
                timeline.tuning_time_total += record.get("tuning_time", 0)
        elif kind == "replan_finished":
            timeline.replans += 1
        elif kind in ("replan_started", "search_progress"):
            pass  # no coordinate; counted in ``events`` only
        else:
            timeline.unknown_events += 1
    return timeline


def load_timeline(path: str) -> Timeline:
    """Read one JSONL trace file into a :class:`Timeline`."""
    return build_timeline(read_events(path))


@dataclass(frozen=True)
class CellDivergence:
    """One coordinate where two traces disagree on read activity."""

    channel: int
    slot: int
    reads_a: tuple[tuple[str, str], ...]
    reads_b: tuple[tuple[str, str], ...]
    fate_a: str
    fate_b: str

    def describe(self, label_a: str = "A", label_b: str = "B") -> str:
        def side(label, reads, fate):
            if not reads:
                return f"{label} never read it"
            outcomes = [outcome for _, outcome in reads]
            bad = [o for o in outcomes if o != "ok"]
            detail = f"{len(reads)} read(s)"
            if bad:
                detail += f", {len(bad)} {'/'.join(sorted(set(bad)))}"
            if fate != "ok":
                detail += f" (aired {fate})"
            return f"{label}: {detail}"

        return (
            f"channel {self.channel}, slot {self.slot}: "
            f"{side(label_a, self.reads_a, self.fate_a)}; "
            f"{side(label_b, self.reads_b, self.fate_b)}"
        )


@dataclass
class TimelineDiff:
    """Outcome of comparing two timelines coordinate by coordinate."""

    divergences: list[CellDivergence]
    cells_compared: int
    walks_a: int
    walks_b: int
    mean_access_a: float
    mean_access_b: float
    mean_tuning_a: float
    mean_tuning_b: float

    @property
    def identical(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self) -> tuple[int, int] | None:
        """The earliest disagreeing (channel, slot), in air order."""
        if not self.divergences:
            return None
        first = self.divergences[0]
        return (first.channel, first.slot)


def diff_timelines(a: Timeline, b: Timeline) -> TimelineDiff:
    """Compare read activity cell by cell, earliest slot first.

    Only *reads* are compared: a live trace additionally carries
    station-side events (airings, fault decisions) that a simulator
    replay has no counterpart for; those enrich the explanation but
    never count as divergence on their own.
    """
    keys = set(a.cells) | set(b.cells)
    divergences: list[CellDivergence] = []
    compared = 0
    empty = SlotCell(channel=0, slot=0)
    for channel, slot in sorted(keys, key=lambda k: (k[1], k[0])):
        cell_a = a.cells.get((channel, slot), empty)
        cell_b = b.cells.get((channel, slot), empty)
        reads_a = cell_a.read_signature
        reads_b = cell_b.read_signature
        if not reads_a and not reads_b:
            continue  # station-only coordinate: nothing to disagree on
        compared += 1
        if reads_a != reads_b:
            divergences.append(
                CellDivergence(
                    channel=channel,
                    slot=slot,
                    reads_a=reads_a,
                    reads_b=reads_b,
                    fate_a=cell_a.fate,
                    fate_b=cell_b.fate,
                )
            )
    return TimelineDiff(
        divergences=divergences,
        cells_compared=compared,
        walks_a=a.walks,
        walks_b=b.walks,
        mean_access_a=a.mean_access_time,
        mean_access_b=b.mean_access_time,
        mean_tuning_a=a.mean_tuning_time,
        mean_tuning_b=b.mean_tuning_time,
    )


def diff_trace_files(path_a: str, path_b: str) -> TimelineDiff:
    """Load and diff two JSONL traces."""
    return diff_timelines(load_timeline(path_a), load_timeline(path_b))


def format_timeline(
    timeline: Timeline,
    *,
    limit: int = 40,
    channel: int | None = None,
) -> str:
    """Human-readable per-slot table of one reconstructed timeline."""
    cells = timeline.ordered_cells()
    if channel is not None:
        cells = [cell for cell in cells if cell.channel == channel]
    shown = cells[:limit] if limit else cells
    lines = [
        f"{'ch':>3} {'slot':>6} {'fate':>8} {'aired':>6} {'reads':>6} "
        f"{'bad':>4} {'drops':>6} keys",
        "-" * 64,
    ]
    for cell in shown:
        bad = sum(
            count
            for (_, outcome), count in cell.read_counts.items()
            if outcome != "ok"
        )
        keys = sorted({key for key, _ in cell.read_counts})
        preview = ",".join(keys[:3]) + ("…" if len(keys) > 3 else "")
        lines.append(
            f"{cell.channel:>3} {cell.slot:>6} {cell.fate:>8} "
            f"{sum(cell.aired.values()):>6} {cell.total_reads:>6} "
            f"{bad:>4} {cell.drops:>6} {preview}"
        )
    if len(cells) > len(shown):
        lines.append(f"… {len(cells) - len(shown)} more cell(s)")
    lines.append(
        f"walks: {timeline.walks} ({timeline.abandoned} abandoned, "
        f"{timeline.retries} retries), mean access "
        f"{timeline.mean_access_time:.3f}, mean tuning "
        f"{timeline.mean_tuning_time:.3f}, replans {timeline.replans}"
    )
    return "\n".join(lines)


def format_diff(
    diff: TimelineDiff,
    *,
    label_a: str = "A",
    label_b: str = "B",
    limit: int = 10,
) -> str:
    """Human-readable verdict of one timeline diff."""
    lines = [
        f"{label_a}: {diff.walks_a} walk(s), mean access "
        f"{diff.mean_access_a:.4f}, mean tuning {diff.mean_tuning_a:.4f}",
        f"{label_b}: {diff.walks_b} walk(s), mean access "
        f"{diff.mean_access_b:.4f}, mean tuning {diff.mean_tuning_b:.4f}",
    ]
    if diff.identical:
        lines.append(
            f"identical read activity across {diff.cells_compared} "
            "slot cell(s)"
        )
        return "\n".join(lines)
    channel, slot = diff.first_divergence
    lines.append(
        f"first divergence: channel {channel}, slot {slot} "
        f"({len(diff.divergences)} divergent cell(s) of "
        f"{diff.cells_compared} compared)"
    )
    for divergence in diff.divergences[:limit]:
        lines.append("  " + divergence.describe(label_a, label_b))
    if len(diff.divergences) > limit:
        lines.append(f"  … {len(diff.divergences) - limit} more")
    return "\n".join(lines)
