"""The bench-regression sentinel: turn BENCH snapshots into a gated trajectory.

The ROADMAP's north star ("as fast as the hardware allows") is
unenforceable while ``BENCH_*.json`` files are point-in-time snapshots:
nothing notices when a change quietly costs two slots of mean access
time or doubles the search's node count. This module gives the bench
envelope a memory and a gate:

* :func:`extract_metrics` flattens a merged ``BENCH_all.json``
  (:func:`repro.bench_envelope.merge_records`) into one history entry —
  named metrics, the run's acceptance checks, and a **config
  fingerprint** (tuner count, repeats, seeds, …) identifying the scale
  the numbers were measured at;
* :func:`append_history` / :func:`load_history` persist entries as one
  JSONL line per run under ``benchmarks/history/`` — the trajectory;
* :func:`compare_runs` diffs a candidate entry against a baseline with
  per-metric relative tolerances and names the **first regressed
  metric** — the message CI fails the build with.

Metrics are classified on two axes. *Direction*: ``lower`` is better
(access times, node counts) or ``higher`` is better (throughput).
*Kind*: ``quality`` metrics are deterministic functions of the seeds
(slot-denominated latencies, node counts) and gate the build at
``tolerance``; ``timing`` metrics are machine-dependent wall-clock
figures, tracked in every entry and report but gated only when an
explicit ``timing_tolerance`` is supplied — a CI runner's noisy clock
must not fail a build over seconds while a real slot regression must.

Comparing runs measured at different scales is meaningless, so a
fingerprint mismatch is a hard error unless explicitly waived; a
candidate whose own acceptance checks failed regresses outright.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ..bench_envelope import suite_records
from ..exceptions import ReproError

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "METRIC_SPECS",
    "MetricSpec",
    "MetricReading",
    "RegressionReport",
    "RegressError",
    "extract_metrics",
    "append_history",
    "load_history",
    "compare_runs",
    "format_report",
]

HISTORY_SCHEMA_VERSION = 1

QUALITY = "quality"
TIMING = "timing"
LOWER = "lower"
HIGHER = "higher"


class RegressError(ReproError):
    """The sentinel cannot produce a meaningful comparison."""


@dataclass(frozen=True)
class MetricSpec:
    """Where one tracked metric lives in a suite record, and how to judge it.

    ``path`` indexes into the suite's stamped record (usually under
    ``aggregate``); ``direction`` says which way is better; ``kind``
    separates seed-deterministic quality metrics (gated) from
    machine-dependent timing metrics (tracked, gated only on request).
    """

    suite: str
    metric: str
    path: tuple[str, ...]
    direction: str = LOWER
    kind: str = QUALITY

    @property
    def name(self) -> str:
        return f"{self.suite}.{self.metric}"


#: Every metric the trajectory tracks, in gate order — the *first*
#: entry here that regresses is the one the failure names.
METRIC_SPECS: tuple[MetricSpec, ...] = (
    # net-loadtest: slot-denominated latencies are seed-deterministic.
    MetricSpec(
        "net-loadtest", "mean_access_time",
        ("aggregate", "mean_access_time"),
    ),
    MetricSpec(
        "net-loadtest", "mean_tuning_time",
        ("aggregate", "mean_tuning_time"),
    ),
    MetricSpec(
        "net-loadtest", "access_p99",
        ("result", "access_percentiles", "p99"),
    ),
    MetricSpec(
        "net-loadtest", "walks_per_second",
        ("aggregate", "walks_per_second"),
        direction=HIGHER, kind=TIMING,
    ),
    # search-overhaul: node counts are the quality axis, clocks timing.
    MetricSpec(
        "search-overhaul", "best_first_nodes_expanded",
        ("aggregate", "best_first_nodes_expanded"),
    ),
    MetricSpec(
        "search-overhaul", "a2_best_first_nodes_expanded",
        ("aggregate", "a2_best_first_nodes_expanded"),
    ),
    MetricSpec(
        "search-overhaul", "best_first_seconds",
        ("aggregate", "best_first_seconds"), kind=TIMING,
    ),
    MetricSpec(
        "search-overhaul", "dfs_bnb_seconds",
        ("aggregate", "dfs_bnb_seconds"), kind=TIMING,
    ),
    MetricSpec(
        "search-overhaul", "speedup",
        ("aggregate", "speedup"), direction=HIGHER, kind=TIMING,
    ),
    # cluster-loadtest: per-shard-count access times are
    # seed-deterministic quality; throughput and speedups are wall-clock.
    MetricSpec(
        "cluster-loadtest", "mean_access_time_1shard",
        ("aggregate", "mean_access_time_by_shards", "1"),
    ),
    MetricSpec(
        "cluster-loadtest", "mean_access_time_2shards",
        ("aggregate", "mean_access_time_by_shards", "2"),
    ),
    MetricSpec(
        "cluster-loadtest", "mean_access_time_4shards",
        ("aggregate", "mean_access_time_by_shards", "4"),
    ),
    MetricSpec(
        "cluster-loadtest", "walks_per_second_1shard",
        ("aggregate", "walks_per_second_by_shards", "1"),
        direction=HIGHER, kind=TIMING,
    ),
    MetricSpec(
        "cluster-loadtest", "speedup_2shards",
        ("aggregate", "speedup_2shards"),
        direction=HIGHER, kind=TIMING,
    ),
    MetricSpec(
        "cluster-loadtest", "speedup_4shards",
        ("aggregate", "speedup_4shards"),
        direction=HIGHER, kind=TIMING,
    ),
    # engine-batch: slot-denominated means are seed-deterministic
    # quality; walk throughput and speedups are wall-clock.
    MetricSpec(
        "engine-batch", "mean_access_time",
        ("aggregate", "mean_access_time"),
    ),
    MetricSpec(
        "engine-batch", "mean_tuning_time",
        ("aggregate", "mean_tuning_time"),
    ),
    MetricSpec(
        "engine-batch", "faulty_mean_access_time",
        ("aggregate", "faulty_mean_access_time"),
    ),
    MetricSpec(
        "engine-batch", "batch_walks_per_second",
        ("aggregate", "batch_walks_per_second"),
        direction=HIGHER, kind=TIMING,
    ),
    MetricSpec(
        "engine-batch", "faulty_walks_per_second",
        ("aggregate", "faulty_walks_per_second"),
        direction=HIGHER, kind=TIMING,
    ),
    MetricSpec(
        "engine-batch", "speedup_vs_scalar",
        ("aggregate", "speedup_vs_scalar"),
        direction=HIGHER, kind=TIMING,
    ),
    # sched-bench: bytes per version are seed-deterministic quality
    # (the delta encoder either compresses the history or it doesn't);
    # publish/load/rollback latencies are wall-clock.
    MetricSpec(
        "sched-bench", "store_bytes_per_version",
        ("result", "store_bytes_per_version"),
    ),
    MetricSpec(
        "sched-bench", "store_bytes_total",
        ("result", "store_bytes_total"),
    ),
    MetricSpec(
        "sched-bench", "publish_ms_mean",
        ("result", "publish_ms_mean"), kind=TIMING,
    ),
    MetricSpec(
        "sched-bench", "load_ms_mean",
        ("result", "load_ms_mean"), kind=TIMING,
    ),
    MetricSpec(
        "sched-bench", "rollback_ms",
        ("result", "rollback_ms"), kind=TIMING,
    ),
    # approx-frontier: data-wait ratios over the information-theoretic
    # lower bound are seed-deterministic quality (the frontier's quality
    # axis, size-comparable); plan wall times are the time axis, timing.
    MetricSpec(
        "approx-frontier", "ptas_ratio_small",
        ("aggregate", "ptas_ratio_small"),
    ),
    MetricSpec(
        "approx-frontier", "ptas_ratio_large",
        ("aggregate", "ptas_ratio_large"),
    ),
    MetricSpec(
        "approx-frontier", "ptas_bound_slack_large",
        ("aggregate", "ptas_bound_slack_large"),
    ),
    MetricSpec(
        "approx-frontier", "sorting_ratio_large",
        ("aggregate", "sorting_ratio_large"),
    ),
    MetricSpec(
        "approx-frontier", "meta_ratio_small",
        ("aggregate", "meta_ratio_small"),
    ),
    MetricSpec(
        "approx-frontier", "meta_ratio_large",
        ("aggregate", "meta_ratio_large"),
    ),
    MetricSpec(
        "approx-frontier", "ptas_plan_seconds_large",
        ("aggregate", "ptas_plan_seconds_large"), kind=TIMING,
    ),
    MetricSpec(
        "approx-frontier", "sorting_plan_seconds_large",
        ("aggregate", "sorting_plan_seconds_large"), kind=TIMING,
    ),
    MetricSpec(
        "approx-frontier", "meta_plan_seconds_large",
        ("aggregate", "meta_plan_seconds_large"), kind=TIMING,
    ),
    # server-faults: how gracefully the server degrades, in slots.
    MetricSpec(
        "server-faults", "lossless_mean_access",
        ("aggregate", "lossless_mean_access"),
    ),
    MetricSpec(
        "server-faults", "lossy_mean_access",
        ("aggregate", "lossy_mean_access"),
    ),
    MetricSpec(
        "server-faults", "degradation_slots",
        ("aggregate", "degradation_slots"),
    ),
)

_SPEC_BY_NAME = {spec.name: spec for spec in METRIC_SPECS}


def _dig(record: dict, path: tuple[str, ...]):
    value = record
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def extract_metrics(merged: dict) -> dict:
    """Flatten one merged ``BENCH_all.json`` into a history entry.

    The entry carries the envelope's ``rev``/``timestamp``, every
    tracked metric present in the run, the run's aggregate checks, and
    the config fingerprint (each suite's ``config`` block, plus the
    search suite's ``repeats``, which lives in its aggregate).
    """
    suites = dict(suite_records(merged))
    metrics: dict[str, float] = {}
    for spec in METRIC_SPECS:
        record = suites.get(spec.suite)
        if record is None:
            continue
        value = _dig(record, spec.path)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[spec.name] = float(value)
    fingerprint: dict[str, dict] = {}
    for name, record in sorted(suites.items()):
        fingerprint[name] = dict(record.get("config") or {})
        repeats = _dig(record, ("aggregate", "repeats"))
        if repeats is not None:
            fingerprint[name]["repeats"] = repeats
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "rev": merged.get("rev"),
        "timestamp": merged.get("timestamp"),
        "fingerprint": fingerprint,
        "metrics": metrics,
        "checks": {
            name: bool(ok)
            for name, ok in sorted(
                merged.get("aggregate", {}).get("checks", {}).items()
            )
        },
    }


def append_history(path: str, entry: dict) -> None:
    """Append one history entry as a JSONL line, creating parents."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(path: str) -> list[dict]:
    """Read a trajectory file; entries in append (chronological) order."""
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            version = entry.get("schema_version")
            if version != HISTORY_SCHEMA_VERSION:
                raise RegressError(
                    f"{path}:{line_number}: history schema_version "
                    f"{version!r}; this tooling speaks "
                    f"{HISTORY_SCHEMA_VERSION}"
                )
            entries.append(entry)
    return entries


@dataclass(frozen=True)
class MetricReading:
    """One metric's baseline-vs-candidate judgement."""

    name: str
    baseline: float | None
    candidate: float | None
    direction: str
    kind: str
    delta: float | None  # signed relative change, candidate vs baseline
    gated: bool
    regressed: bool
    note: str = ""


@dataclass(frozen=True)
class RegressionReport:
    """Everything :func:`compare_runs` judged, in gate order."""

    readings: list[MetricReading] = field(default_factory=list)
    failed_checks: list[str] = field(default_factory=list)
    baseline_rev: str | None = None
    candidate_rev: str | None = None

    @property
    def regressions(self) -> list[MetricReading]:
        return [r for r in self.readings if r.regressed]

    @property
    def first_regressed(self) -> str | None:
        """Name of the first regression — checks gate before metrics."""
        if self.failed_checks:
            return f"checks.{self.failed_checks[0]}"
        for reading in self.readings:
            if reading.regressed:
                return reading.name
        return None

    @property
    def ok(self) -> bool:
        return self.first_regressed is None


def _relative_delta(
    baseline: float, candidate: float, direction: str
) -> tuple[float, float]:
    """Signed relative change and how much of it is *worse*-ward."""
    if baseline == 0.0:
        delta = 0.0 if candidate == 0.0 else float("inf")
    else:
        delta = (candidate - baseline) / abs(baseline)
    worse = delta if direction == LOWER else -delta
    return delta, worse


def compare_runs(
    baseline: dict,
    candidate: dict,
    *,
    tolerance: float = 0.1,
    timing_tolerance: float | None = None,
    allow_config_mismatch: bool = False,
) -> RegressionReport:
    """Judge a candidate history entry against a baseline entry.

    Quality metrics regress when they move worse-ward by more than
    ``tolerance`` (relative); timing metrics are reported but gate only
    when ``timing_tolerance`` is given. A quality metric the baseline
    tracked but the candidate lost regresses outright (a suite must not
    silently drop out of the gate), and any failed candidate check is a
    regression of its own, reported first.

    The config fingerprints must match exactly: the comparison of a
    1000-tuner run against a 50-tuner run is not a regression signal
    but a scale mismatch, raised as :class:`RegressError` unless
    ``allow_config_mismatch`` waives it.
    """
    if not 0.0 <= tolerance:
        raise ValueError("tolerance must be >= 0")
    base_fp = baseline.get("fingerprint", {})
    cand_fp = candidate.get("fingerprint", {})
    if base_fp != cand_fp and not allow_config_mismatch:
        for suite in sorted(set(base_fp) | set(cand_fp)):
            if base_fp.get(suite) != cand_fp.get(suite):
                raise RegressError(
                    f"config fingerprint mismatch in suite {suite!r}: "
                    f"baseline {base_fp.get(suite)!r} vs candidate "
                    f"{cand_fp.get(suite)!r}; re-seed the baseline at this "
                    "scale or pass --allow-config-mismatch"
                )
    failed_checks = sorted(
        name
        for name, ok in candidate.get("checks", {}).items()
        if not ok
    )
    base_metrics = baseline.get("metrics", {})
    cand_metrics = candidate.get("metrics", {})
    readings: list[MetricReading] = []
    for spec in METRIC_SPECS:
        base_value = base_metrics.get(spec.name)
        cand_value = cand_metrics.get(spec.name)
        if base_value is None and cand_value is None:
            continue
        gate = tolerance if spec.kind == QUALITY else timing_tolerance
        gated = gate is not None
        if base_value is None:
            readings.append(
                MetricReading(
                    spec.name, None, cand_value, spec.direction, spec.kind,
                    delta=None, gated=False, regressed=False,
                    note="new metric (no baseline)",
                )
            )
            continue
        if cand_value is None:
            regressed = spec.kind == QUALITY
            readings.append(
                MetricReading(
                    spec.name, base_value, None, spec.direction, spec.kind,
                    delta=None, gated=gated, regressed=regressed,
                    note="missing from candidate",
                )
            )
            continue
        delta, worse = _relative_delta(base_value, cand_value, spec.direction)
        regressed = gated and worse > gate
        readings.append(
            MetricReading(
                spec.name, base_value, cand_value, spec.direction, spec.kind,
                delta=delta, gated=gated, regressed=regressed,
            )
        )
    return RegressionReport(
        readings=readings,
        failed_checks=failed_checks,
        baseline_rev=baseline.get("rev"),
        candidate_rev=candidate.get("rev"),
    )


def format_report(
    report: RegressionReport,
    *,
    tolerance: float,
    timing_tolerance: float | None = None,
) -> str:
    """Human-readable comparison table, regressions flagged."""
    lines = [
        f"baseline rev {report.baseline_rev or '?'} vs candidate rev "
        f"{report.candidate_rev or '?'} "
        f"(tolerance {tolerance:.0%} on quality metrics"
        + (
            f", {timing_tolerance:.0%} on timing metrics)"
            if timing_tolerance is not None
            else "; timing tracked, ungated)"
        )
    ]
    header = (
        f"{'metric':<42} {'baseline':>12} {'candidate':>12} "
        f"{'delta':>8}  verdict"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in report.readings:
        base = f"{r.baseline:.4g}" if r.baseline is not None else "-"
        cand = f"{r.candidate:.4g}" if r.candidate is not None else "-"
        if r.delta is None:
            delta = "-"
        elif r.delta == float("inf"):
            delta = "+inf"
        else:
            delta = f"{r.delta:+.1%}"
        if r.regressed:
            verdict = "REGRESSED"
        elif r.note:
            verdict = r.note
        elif not r.gated:
            verdict = f"ok ({r.kind}, ungated)"
        else:
            verdict = "ok"
        lines.append(f"{r.name:<42} {base:>12} {cand:>12} {delta:>8}  {verdict}")
    for check in report.failed_checks:
        lines.append(f"check {check}: FAILED in candidate")
    first = report.first_regressed
    lines.append(
        "result: ok — no tracked metric regressed"
        if first is None
        else f"result: REGRESSION — first regressed metric: {first}"
    )
    return "\n".join(lines)
