"""Structured observability: tracing, metrics exposition, slot timelines.

Three layers, all opt-in and all free when unused:

* :mod:`repro.obs.events` — typed trace events (`SlotAired`,
  `SlotRead`, `ChannelHop`, `WalkFinished`, `ReplanStarted/Finished`,
  `SearchProgress`, `FaultInjected`, `FrameDropped`) behind the
  :class:`~repro.obs.events.Tracer` protocol, with a no-op default
  (:data:`~repro.obs.events.NULL_TRACER`), a bounded ring buffer and a
  rotating JSONL sink. The tracer is threaded through the station, the
  tuner fleet, the pointer walk, the serving loop, the solvers and the
  fault injector.
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry that
  absorbs :class:`~repro.perf.PerfRecorder` snapshots and renders
  Prometheus text exposition; :mod:`repro.obs.http` mounts it on an
  asyncio ``/metrics`` + ``/healthz`` endpoint
  (``repro serve --metrics-port``).
* :mod:`repro.obs.timeline` — reconstruct a per-(channel, slot)
  timeline from a JSONL trace and diff two traces (live air vs the
  in-process simulator, lossy vs lossless) down to the first divergent
  slot (``repro obs timeline`` / ``repro obs diff``).

A second layer *explains* what the first records:

* :mod:`repro.obs.attrib` — fold a trace per walk into an additive
  phase breakdown (probe / descent / hop / retry / slack) whose sum is
  bit-identical to the measured access time (``repro obs attrib``);
* :mod:`repro.obs.digest` — deterministic, mergeable integer quantile
  digests backing the registry's :class:`~repro.obs.metrics.Summary`
  series (p50/p95/p99 access, tuning and per-phase times on
  ``/metrics``);
* :mod:`repro.obs.regress` — the bench-regression sentinel: append
  each ``BENCH_all.json`` to a history trajectory and gate against a
  committed baseline (``repro obs regress`` / ``make bench-history``).

A third layer turns records into *diagnosis*:

* :mod:`repro.obs.spans` — causal spans over logical air time
  (``replan → store.publish → station.cutover → walk segment``),
  wire-propagated through the version-3 air envelope and reconstructed
  into trees that reconcile exactly against the attribution layer
  (``repro obs spans``);
* :mod:`repro.obs.recorder` — the always-on flight recorder: bounded
  per-component rings, frozen into a correlated postmortem bundle
  when an anomaly fires (``repro obs postmortem``);
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn-rate
  alerting over the registry, exposed as ``repro_slo_*`` gauges and
  :class:`~repro.obs.events.AlertFired` events.
"""

from .attrib import (
    PHASES,
    AttributionBuilder,
    AttributionCollector,
    AttributionError,
    WalkAttribution,
    attribute_events,
    attribute_walk,
    format_attribution,
)
from .digest import DEFAULT_QUANTILES, QuantileDigest
from .events import (
    EVENT_TYPES,
    NULL_TRACER,
    AlertFired,
    ChannelHop,
    FaultInjected,
    FrameDropped,
    JsonlTracer,
    NullTracer,
    PlannerDecision,
    RecorderTriggered,
    ReplanFinished,
    ReplanStarted,
    RingBufferTracer,
    SearchProgress,
    SlotAired,
    SlotRead,
    SpanFinished,
    TeeTracer,
    TraceEvent,
    Tracer,
    WalkFinished,
    event_from_dict,
    event_to_dict,
    read_events,
)
from .http import ObsHttpServer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    declare_perf_baseline,
    slot_buckets,
)
from .regress import (
    MetricReading,
    RegressError,
    RegressionReport,
    append_history,
    compare_runs,
    extract_metrics,
    format_report,
    load_history,
)
from .recorder import (
    FlightRecorder,
    bundle_span_tree,
    causal_chain,
    format_postmortem,
    load_bundle,
)
from .slo import SLOSpec, SLOWatchdog, default_slos
from .spans import (
    NO_TRACE,
    ActiveSpan,
    SpanNode,
    SpanTracer,
    TraceContext,
    check_span_tree,
    format_span_tree,
    reconcile_with_attrib,
    span_tracer_of,
    span_tree,
)
from .timeline import (
    SlotCell,
    Timeline,
    TimelineDiff,
    build_timeline,
    diff_timelines,
    diff_trace_files,
    format_diff,
    format_timeline,
    load_timeline,
)

__all__ = [
    # events / tracers
    "TraceEvent",
    "SlotAired",
    "FrameDropped",
    "SlotRead",
    "ChannelHop",
    "WalkFinished",
    "ReplanStarted",
    "ReplanFinished",
    "SearchProgress",
    "FaultInjected",
    "PlannerDecision",
    "SpanFinished",
    "AlertFired",
    "RecorderTriggered",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "read_events",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RingBufferTracer",
    "JsonlTracer",
    "TeeTracer",
    # metrics + http
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "declare_perf_baseline",
    "slot_buckets",
    "ObsHttpServer",
    # digests
    "QuantileDigest",
    "DEFAULT_QUANTILES",
    # attribution
    "PHASES",
    "WalkAttribution",
    "AttributionError",
    "AttributionBuilder",
    "AttributionCollector",
    "attribute_events",
    "attribute_walk",
    "format_attribution",
    # regression sentinel
    "MetricReading",
    "RegressError",
    "RegressionReport",
    "extract_metrics",
    "append_history",
    "load_history",
    "compare_runs",
    "format_report",
    # timeline
    "SlotCell",
    "Timeline",
    "TimelineDiff",
    "build_timeline",
    "load_timeline",
    "diff_timelines",
    "diff_trace_files",
    "format_timeline",
    "format_diff",
    # spans
    "TraceContext",
    "NO_TRACE",
    "ActiveSpan",
    "SpanTracer",
    "span_tracer_of",
    "SpanNode",
    "span_tree",
    "check_span_tree",
    "reconcile_with_attrib",
    "format_span_tree",
    # flight recorder
    "FlightRecorder",
    "load_bundle",
    "causal_chain",
    "format_postmortem",
    "bundle_span_tree",
    # SLO watchdog
    "SLOSpec",
    "SLOWatchdog",
    "default_slos",
]
