"""Typed trace events and the near-zero-overhead ``Tracer`` protocol.

Every component of the live path — the station airing frames, the tuner
fleet walking pointers, the serving loop replanning, the solvers
searching — can narrate what it is doing as a stream of small, typed,
JSON-able events. The stream is *opt-in*: every instrumented call site
holds a tracer and guards emission with a single attribute check::

    if tracer.enabled:
        tracer.emit(SlotAired(channel=2, absolute_slot=47, fate="lost"))

The default tracer is :data:`NULL_TRACER` (``enabled`` is ``False``),
so a caller that never asks for tracing pays one boolean read per
potential event and constructs nothing — the zero-overhead contract the
differential test in ``tests/obs/test_zero_overhead.py`` locks: with
tracing off, every measured number is bit-identical to a run without
the observability layer.

Collectors:

* :class:`NullTracer` — the free default; drops everything.
* :class:`RingBufferTracer` — bounded in-memory ring, oldest events
  evicted first (``dropped`` counts evictions); the in-process choice
  for tests and short diagnostics.
* :class:`JsonlTracer` — one JSON object per line to a file, with
  size-based rotation (``path`` → ``path.1`` → ``path.2`` …); the
  durable sink ``repro.cli obs timeline`` / ``obs diff`` reconstruct
  from.
* :class:`TeeTracer` — fan one stream out to several collectors.

Events carry *logical* coordinates (channel, absolute slot, keys,
node counts) — the quantities that are pure functions of the seeds —
while sinks stamp wall-clock ``ts`` at write time, so two traces of the
same seeded run differ only in timestamps and a timeline diff can
demand logical equality.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Iterable, Iterator, Mapping, Protocol

__all__ = [
    "TraceEvent",
    "SlotAired",
    "FrameDropped",
    "SlotRead",
    "ChannelHop",
    "WalkFinished",
    "ReplanStarted",
    "ReplanFinished",
    "ScheduleActivated",
    "CutoverDetected",
    "SearchProgress",
    "FaultInjected",
    "PlannerDecision",
    "SpanFinished",
    "AlertFired",
    "RecorderTriggered",
    "EVENT_TYPES",
    "NO_WALK",
    "event_to_dict",
    "event_from_dict",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RingBufferTracer",
    "JsonlTracer",
    "TeeTracer",
]


# ---------------------------------------------------------------------------
# the event vocabulary
# ---------------------------------------------------------------------------

#: The ``walk`` id carried by :class:`SlotRead`/:class:`ChannelHop`/
#: :class:`WalkFinished` when no correlation id was assigned.
NO_WALK = -1


@dataclass(frozen=True, slots=True)
class SlotAired:
    """The station put (or would put) an airing on the air.

    ``fate`` is what the seeded channel did to it: ``"ok"``, ``"lost"``
    or ``"corrupt"``. Emitted once per *answered* airing, so a slot
    served to three listeners appears three times — the timeline
    reconstruction deduplicates by coordinate.
    """

    kind: ClassVar[str] = "slot_aired"
    channel: int
    absolute_slot: int
    fate: str = "ok"


@dataclass(frozen=True, slots=True)
class FrameDropped:
    """A frame never reached any receiver (e.g. UDP drop-oldest)."""

    kind: ClassVar[str] = "frame_dropped"
    channel: int
    absolute_slot: int
    reason: str = "queue-full"


@dataclass(frozen=True, slots=True)
class SlotRead:
    """One receiver spent tuning time on an airing.

    Emitted by the shared :class:`~repro.client.walk.PointerWalk` for
    every bucket a walk reads — live over a socket or replayed through
    the in-process simulator — which is what makes live and simulated
    traces of the same seeded workload directly diffable. ``outcome``
    is ``"ok"``, ``"lost"`` or ``"corrupt"`` as the *receiver* saw it.

    ``walk`` is the walk correlation id (see :data:`NO_WALK`): two
    concurrent walks for the same key interleave their events in a
    fleet trace, and the id is what lets
    :mod:`repro.obs.attrib` reassemble each walk exactly. ``-1`` means
    "unassigned" (old traces, callers that never set one) — consumers
    then fall back to grouping by key.
    """

    kind: ClassVar[str] = "slot_read"
    key: str
    channel: int
    absolute_slot: int
    outcome: str = "ok"
    walk: int = -1


@dataclass(frozen=True, slots=True)
class ChannelHop:
    """A walk re-tuned from one channel to another."""

    kind: ClassVar[str] = "channel_hop"
    key: str
    from_channel: int
    to_channel: int
    absolute_slot: int
    walk: int = -1


@dataclass(frozen=True, slots=True)
class WalkFinished:
    """One pointer walk completed (or gave up)."""

    kind: ClassVar[str] = "walk_finished"
    key: str
    tune_slot: int
    access_time: int
    tuning_time: int
    channel_switches: int
    retries: int = 0
    abandoned: bool = False
    walk: int = -1


@dataclass(frozen=True, slots=True)
class ReplanStarted:
    """The serving loop began rebuilding its plan after ``cycle``."""

    kind: ClassVar[str] = "replan_started"
    cycle: int


@dataclass(frozen=True, slots=True)
class ReplanFinished:
    """The rebuild finished; ``seconds`` is its wall-clock cost."""

    kind: ClassVar[str] = "replan_finished"
    cycle: int
    seconds: float


@dataclass(frozen=True, slots=True)
class ScheduleActivated:
    """A station scheduled a new plan version onto the air.

    Emitted at publish time by :meth:`repro.net.BroadcastStation.publish`
    (and mirrored by the store-backed serving paths): the new
    ``version`` takes over at ``activate_slot``, always a cycle boundary
    of the outgoing segment — the atomicity that lets in-flight walks
    recover by restart instead of reading a half-swapped cycle.
    """

    kind: ClassVar[str] = "schedule_activated"
    version: int
    activate_slot: int
    cycle_length: int
    note: str = ""


@dataclass(frozen=True, slots=True)
class CutoverDetected:
    """A walk noticed the air's schedule version change under it.

    Emitted by :class:`~repro.client.walk.PointerWalk` when a delivered
    envelope is stamped with a different version than the one the walk
    adopted: the pointers it was following belong to a retired plan, so
    it restarts from the root on the new version (accounted like a
    retry — the read still cost tuning time, and never as a corrupt
    bucket).
    """

    kind: ClassVar[str] = "cutover_detected"
    key: str
    from_version: int
    to_version: int
    absolute_slot: int
    walk: int = -1


@dataclass(frozen=True, slots=True)
class SearchProgress:
    """A long solve reporting effort while it runs.

    Emitted every few thousand expansions and once more with
    ``finished=True`` when the search returns, so an operator tailing a
    JSONL trace can watch a branch-and-bound converge instead of
    staring at a silent process.
    """

    kind: ClassVar[str] = "search_progress"
    mode: str
    nodes_expanded: int
    nodes_generated: int
    finished: bool = False


@dataclass(frozen=True, slots=True)
class FaultInjected:
    """The seeded fault model damaged an airing.

    ``absolute_slot`` is in *global air time* (the injector's origin
    plus the queried slot), so events from per-cycle shifted views of
    one injector land on one consistent axis.
    """

    kind: ClassVar[str] = "fault_injected"
    channel: int
    absolute_slot: int
    fate: str


@dataclass(frozen=True, slots=True)
class PlannerDecision:
    """The cost-model meta-planner chose a strategy for a catalog.

    Emitted by :func:`repro.approx.plan_meta` once per dispatch: the
    features it measured (catalog size, weight skew as Gini coefficient
    and normalised entropy), the registry ``method`` it picked, and the
    human-readable ``reason`` from the decision table. ``fell_back``
    records that the chosen method blew its search budget and the
    fallback heuristic served instead — the trace then shows *both*
    what the model wanted and what production got.
    """

    kind: ClassVar[str] = "planner_decision"
    method: str
    items: int
    channels: int
    gini: float
    entropy: float
    reason: str = ""
    fell_back: bool = False


@dataclass(frozen=True, slots=True)
class SpanFinished:
    """One causal span closed; the complete record of its lifetime.

    Spans are emitted *once*, at completion, by
    :class:`~repro.obs.spans.SpanTracer` — there is no separate begin
    event, because every field (including ``start_slot``) is known by
    the time the span ends and a single record keeps trace files
    replay-stable. ``trace_id`` groups one causal tree (a replan and
    everything it touched); ``parent_id`` is ``0`` for roots. Slots are
    logical air time, so durations are seed-deterministic; the
    inclusive convention (``end_slot - start_slot + 1``) matches the
    access-time arithmetic in :mod:`repro.obs.attrib`.

    ``attrs`` is a tuple of ``(key, value)`` pairs (dict-like input is
    normalised) so the event stays hashable and round-trips through
    JSON as a stable list of pairs.
    """

    kind: ClassVar[str] = "span_finished"
    trace_id: int
    span_id: int
    parent_id: int
    name: str
    start_slot: int
    end_slot: int
    component: str = ""
    attrs: tuple = ()

    def __post_init__(self) -> None:
        pairs = self.attrs
        if isinstance(pairs, Mapping):
            pairs = pairs.items()
        object.__setattr__(
            self, "attrs", tuple((str(k), v) for k, v in pairs)
        )

    @property
    def duration_slots(self) -> int:
        """Inclusive slot duration (one slot spans one slot)."""
        return self.end_slot - self.start_slot + 1


@dataclass(frozen=True, slots=True)
class AlertFired:
    """An SLO burn-rate window tripped (or recovered).

    Emitted by :class:`~repro.obs.slo.SLOWatchdog` whenever a spec's
    fast/slow burn windows both exceed their thresholds. ``state`` is
    ``"firing"`` or ``"resolved"``; ``value`` is the measured quantity
    and ``threshold`` the spec's objective, so the event alone tells an
    operator how far out of budget the system was.
    """

    kind: ClassVar[str] = "alert_fired"
    slo: str
    state: str
    value: float
    threshold: float
    window_slots: int = 0
    burn_rate: float = 0.0


@dataclass(frozen=True, slots=True)
class RecorderTriggered:
    """The flight recorder dumped a postmortem bundle.

    ``reason`` names the anomaly class (``"parity_failure"``,
    ``"unaccounted_frames"``, ``"abandoned_spike"``, ``"store_error"``,
    ``"alert"``, …) and ``detail`` carries the trigger's own words.
    ``bundle`` is the path the bundle was written to (empty when the
    recorder ran without a dump directory).
    """

    kind: ClassVar[str] = "recorder_triggered"
    reason: str
    detail: str = ""
    bundle: str = ""
    events: int = 0


TraceEvent = (
    SlotAired
    | FrameDropped
    | SlotRead
    | ChannelHop
    | WalkFinished
    | ReplanStarted
    | ReplanFinished
    | ScheduleActivated
    | CutoverDetected
    | SearchProgress
    | FaultInjected
    | PlannerDecision
    | SpanFinished
    | AlertFired
    | RecorderTriggered
)

EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        SlotAired,
        FrameDropped,
        SlotRead,
        ChannelHop,
        WalkFinished,
        ReplanStarted,
        ReplanFinished,
        ScheduleActivated,
        CutoverDetected,
        SearchProgress,
        FaultInjected,
        PlannerDecision,
        SpanFinished,
        AlertFired,
        RecorderTriggered,
    )
}


def event_to_dict(event: TraceEvent) -> dict:
    """Flat JSON-able form: the ``kind`` discriminator plus the fields."""
    record = {"kind": event.kind}
    record.update(asdict(event))
    return record


def event_from_dict(record: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict`; raises on unknown ``kind``.

    Extra keys (a sink's ``ts`` stamp, forward-compatible annotations)
    are ignored, so traces written by newer code still load.
    """
    kind = record.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in record.items() if k in names})


# ---------------------------------------------------------------------------
# tracers
# ---------------------------------------------------------------------------

class Tracer(Protocol):
    """What an instrumented call site needs: a flag and a sink.

    ``enabled`` must be cheap to read — it guards every emission — and
    stable for the lifetime of the tracer (call sites may cache it
    across a hot loop).
    """

    enabled: bool

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        ...


class NullTracer:
    """The free default: claims to be disabled, drops everything."""

    enabled = False
    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        """Accept and discard (call sites normally never reach this)."""


NULL_TRACER = NullTracer()


class RingBufferTracer:
    """Keep the most recent ``capacity`` events in memory.

    ``dropped`` counts evictions, so a consumer knows whether the
    window it is looking at is complete.
    """

    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class JsonlTracer:
    """Append events to a JSONL file, rotating on size.

    Each line is ``event_to_dict(event)`` plus a wall-clock ``ts``
    stamp — stamped **only when the record does not already carry
    one**: re-serializing a replayed trace (raw dicts straight from
    :func:`read_events`, or typed events whose dict kept its ``ts``)
    must preserve the original capture times, not clobber them with
    re-write time. ``stamp=False`` disables stamping entirely. When
    ``rotate_bytes`` is set and a write would push the current file
    past it, the file is rotated logrotate-style (``path`` → ``path.1``
    → … → ``path.keep``; the oldest is deleted) before the write, so
    ``path`` always holds the newest tail and no event is ever split
    across files.
    """

    enabled = True

    def __init__(
        self,
        path: str,
        *,
        rotate_bytes: int | None = None,
        keep: int = 3,
        stamp: bool = True,
    ) -> None:
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ValueError("rotate_bytes must be >= 1 (or None)")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.keep = keep
        self.stamp = stamp
        self.emitted = 0
        self.rotations = 0
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def emit(self, event) -> None:
        # Raw dicts (a replayed JSONL trace) pass through as-is so a
        # re-serialization round-trips byte-for-byte.
        record = dict(event) if isinstance(event, Mapping) else event_to_dict(event)
        if self.stamp and "ts" not in record:
            record["ts"] = time.time()
        line = json.dumps(record, separators=(",", ":")) + "\n"
        encoded = len(line)
        if (
            self.rotate_bytes is not None
            and self._size > 0
            and self._size + encoded > self.rotate_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._size += encoded
        self.emitted += 1

    def _rotate(self) -> None:
        self._handle.close()
        oldest = f"{self.path}.{self.keep}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.keep - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeTracer:
    """Fan one event stream out to several tracers.

    ``enabled`` is the OR of the members', so a tee of null tracers
    stays free at the call sites.
    """

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = tuple(tracers)
        self.enabled = any(t.enabled for t in self.tracers)

    def emit(self, event: TraceEvent) -> None:
        for tracer in self.tracers:
            if tracer.enabled:
                tracer.emit(event)


def read_events(path: str) -> Iterable[dict]:
    """Yield the raw JSON records of one JSONL trace file, in order."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
