"""A tiny asyncio HTTP endpoint: ``/metrics`` and ``/healthz``.

Deliberately minimal — two fixed routes, ``Connection: close``, no
dependencies — because its only job is to let a scraper or a load
balancer look at a running :class:`~repro.net.station.BroadcastStation`
(or any other component holding a :class:`~repro.perf.PerfRecorder`):

* ``GET /metrics`` — calls the ``collect`` hook (typically
  ``registry.absorb_perf(station.perf)`` plus a few gauges) and serves
  :meth:`~repro.obs.metrics.MetricsRegistry.render`'s Prometheus text
  exposition;
* ``GET /healthz`` — serves the ``health`` hook's dict as JSON
  (default ``{"status": "ok"}``).

Mounted by ``repro.cli serve --metrics-port``; see
:class:`ObsHttpServer` for programmatic use::

    registry = MetricsRegistry()
    async with ObsHttpServer(registry, port=9100) as obs:
        print(obs.port)   # bound port (9100, or the free pick for 0)
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Callable

from .metrics import MetricsRegistry

__all__ = ["ObsHttpServer"]

_MAX_REQUEST_BYTES = 8192


class ObsHttpServer:
    """Serve one registry over HTTP until closed.

    Parameters
    ----------
    registry:
        The metric families to expose.
    collect:
        Optional hook called with the registry before each ``/metrics``
        render — the place to absorb live :class:`~repro.perf.PerfRecorder`
        totals and refresh gauges.
    health:
        Optional hook returning the ``/healthz`` JSON payload.
    host, port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        collect: Callable[[MetricsRegistry], None] | None = None,
        health: Callable[[], dict] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.collect = collect
        self.health = health
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ObsHttpServer":
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def __aenter__(self) -> "ObsHttpServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- one request --------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError as error:
                head = error.partial
            except asyncio.LimitOverrunError:
                head = b""
            if len(head) > _MAX_REQUEST_BYTES or not head:
                return
            request_line = head.split(b"\r\n", 1)[0].decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            status, content_type, body = self._route(method, path)
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _route(self, method: str, path: str) -> tuple[str, str, bytes]:
        if method != "GET":
            return (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                b"method not allowed\n",
            )
        if path == "/metrics":
            if self.collect is not None:
                self.collect(self.registry)
            body = self.registry.render().encode("utf-8")
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body,
            )
        if path == "/healthz":
            payload = self.health() if self.health is not None else None
            if payload is None:
                payload = {"status": "ok"}
            return (
                "200 OK",
                "application/json; charset=utf-8",
                (json.dumps(payload) + "\n").encode("utf-8"),
            )
        return ("404 Not Found", "text/plain; charset=utf-8", b"not found\n")
