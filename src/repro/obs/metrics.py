"""Counter/gauge/histogram registry with Prometheus text exposition.

The repository already measures everything through
:class:`repro.perf.PerfRecorder` — flat named monotonic counters and
second-denominated timers. This module turns those snapshots into
something a scraper can consume: a :class:`MetricsRegistry` holding
typed metric families, :meth:`MetricsRegistry.absorb_perf` mapping a
recorder's counters/timers onto Prometheus-named series, and
:meth:`MetricsRegistry.render` emitting the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) the ``/metrics`` endpoint of :mod:`repro.obs.http`
serves.

Naming: a perf counter ``net.station.frames_sent`` becomes
``repro_net_station_frames_sent_total`` (dots and dashes → underscores,
``repro_`` prefix, ``_total`` suffix); a perf timer ``serve.seconds``
becomes ``repro_serve_seconds_total``. :func:`declare_perf_baseline`
pre-registers the station / tuner-fleet / replan families at zero so a
scrape of a freshly started, idle station already exposes every series
an alerting rule might reference.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from math import ceil
from typing import Iterable

from ..perf import PerfRecorder
from .digest import DEFAULT_QUANTILES, QuantileDigest

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "perf_counter_metric_name",
    "perf_timer_metric_name",
    "declare_perf_baseline",
    "slot_buckets",
    "DEFAULT_PERF_BASELINE",
]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_VALID_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def slot_buckets(cycle_length: int, *, max_cycles: int = 8) -> tuple[float, ...]:
    """Histogram bounds for slot-denominated quantities, from the cycle.

    The generic Prometheus defaults (:data:`DEFAULT_BUCKETS`) are
    tuned for sub-second latencies; slot-valued access and tuning times
    live on a completely different axis whose natural unit *is* the
    cycle length: a lossless walk finishes within two cycles, and the
    default :class:`~repro.client.protocol.RecoveryPolicy` abandons
    after ``max_cycles``. The bounds therefore cover fractions of a
    cycle (⅛, ¼, ½, ¾) for tuning-time-sized values, then whole-cycle
    multiples up to the give-up deadline — deduplicated and ascending,
    so tiny cycles (where ⌈L/8⌉ == ⌈L/4⌉) still yield a valid histogram.
    """
    if cycle_length < 1:
        raise ValueError("cycle_length must be >= 1")
    if max_cycles < 2:
        raise ValueError("max_cycles must be >= 2")
    fractions = {
        ceil(cycle_length / 8),
        ceil(cycle_length / 4),
        ceil(cycle_length / 2),
        ceil(3 * cycle_length / 4),
    }
    multiples = {
        m * cycle_length for m in (1, 2, 3, 4, 6, 8) if m <= max_cycles
    }
    multiples.add(max_cycles * cycle_length)
    return tuple(float(b) for b in sorted(fractions | multiples))


#: The perf counters every live deployment should expose even at zero:
#: the station's air path, the tuner fleet, the serving loop's
#: replan accounting, and the fault-recovery tallies a degraded server
#: reports (PR 2's ``server.faults.*`` family).
DEFAULT_PERF_BASELINE = (
    "net.station.connections",
    "net.station.requests",
    "net.station.frames_sent",
    "net.station.protocol_errors",
    "net.station.lost_aired",
    "net.station.corrupt_aired",
    "net.station.udp_subscribed",
    "net.station.udp_sent",
    "net.station.udp_dropped",
    "net.tuner.connections",
    "net.tuner.fetches",
    "net.tuner.frames",
    "net.tuner.reads",
    "net.tuner.retries",
    "net.tuner.lost",
    "net.tuner.corrupt",
    "net.tuner.abandoned",
    "cycles",
    "requests",
    "replans",
    "server.faults.lost",
    "server.faults.corrupt",
    "server.faults.retries",
    "server.faults.abandoned",
    "server.faults.wasted_probes",
)


def _sanitise(raw: str) -> str:
    name = _INVALID.sub("_", raw.replace(".", "_").replace("-", "_"))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def perf_counter_metric_name(counter: str, *, prefix: str = "repro") -> str:
    """Prometheus series name of perf counter ``counter``."""
    base = _sanitise(counter)
    if prefix:
        base = f"{prefix}_{base}"
    return base if base.endswith("_total") else f"{base}_total"


def perf_timer_metric_name(timer: str, *, prefix: str = "repro") -> str:
    """Prometheus series name of perf timer ``timer`` (seconds)."""
    base = _sanitise(timer)
    if prefix:
        base = f"{prefix}_{base}"
    if not base.endswith("_seconds"):
        base = f"{base}_seconds"
    return f"{base}_total"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_signature(labels: "dict[str, str]") -> str:
    """Canonical (sorted) ``key="value"`` list — the series identity."""
    return ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )


def _series_name(name: str, signature: str, extra: str = "") -> str:
    parts = ",".join(part for part in (signature, extra) if part)
    return f"{name}{{{parts}}}" if parts else name


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """Shared shape: a name, a help string, a type tag, and base labels.

    ``labels`` identify one *child* of a metric family: the family name
    plus the canonical (sorted, escaped) label signature is the series
    identity, so ``{"shard": "0"}`` and ``{"shard": "1"}`` are distinct
    children of one family and render under one ``# HELP`` / ``# TYPE``
    header.
    """

    metric_type = "untyped"

    def __init__(
        self, name: str, help: str, labels: "dict[str, str] | None" = None
    ) -> None:
        if not _VALID_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help or name
        self.labels = {k: str(v) for k, v in (labels or {}).items()}
        for label in self.labels:
            if not _VALID_LABEL.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.label_signature = _label_signature(self.labels)

    def series(self, extra: str = "", *, suffix: str = "") -> str:
        """The exposition series name: base labels merged with ``extra``."""
        return _series_name(self.name + suffix, self.label_signature, extra)

    def samples(self) -> list[tuple[str, float]]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total."""

    metric_type = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Adopt an externally accumulated total (a perf snapshot).

        The perf recorders are themselves monotonic, so adopting their
        running total preserves counter semantics; a smaller value is
        ignored rather than ever moving the series backwards.
        """
        if value > self.value:
            self.value = float(value)

    def samples(self) -> list[tuple[str, float]]:
        return [(self.series(), self.value)]


class Gauge(_Metric):
    """A value that can go anywhere (current slot, queue depth, …)."""

    metric_type = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(name, help, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> list[tuple[str, float]]:
        return [(self.series(), self.value)]


class Histogram(_Metric):
    """Cumulative-bucket histogram (the Prometheus shape).

    ``buckets`` are ascending upper bounds; the ``+Inf`` bucket is
    implicit. Rendered as ``name_bucket{le="…"}`` series plus
    ``name_sum`` and ``name_count``.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last entry = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def samples(self) -> list[tuple[str, float]]:
        rows: list[tuple[str, float]] = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            rows.append(
                (
                    self.series(
                        f'le="{_format_value(bound)}"', suffix="_bucket"
                    ),
                    cumulative,
                )
            )
        cumulative += self.counts[-1]
        rows.append((self.series('le="+Inf"', suffix="_bucket"), cumulative))
        rows.append((self.series(suffix="_sum"), self.sum))
        rows.append((self.series(suffix="_count"), self.count))
        return rows


class Summary(_Metric):
    """Quantile summary backed by a :class:`~repro.obs.digest.QuantileDigest`.

    Rendered in the Prometheus summary shape: one
    ``name{quantile="…"}`` series per configured quantile point plus
    ``name_sum`` and ``name_count``. The digest keeps the quantiles
    deterministic and order-independent (two scrapes of one multiset
    render identically) and integer-exact while the distinct-value
    count fits the bin budget — see :mod:`repro.obs.digest`.
    """

    metric_type = "summary"

    def __init__(
        self,
        name: str,
        help: str = "",
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        max_bins: int = 256,
        labels: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(name, help, labels)
        points = tuple(float(q) for q in quantiles)
        if not points:
            raise ValueError("summary needs at least one quantile point")
        if any(not 0.0 <= q <= 1.0 for q in points):
            raise ValueError("quantile points must be in [0, 1]")
        if any(q2 <= q1 for q1, q2 in zip(points, points[1:])):
            raise ValueError("quantile points must be strictly ascending")
        self.quantiles = points
        self.digest = QuantileDigest(max_bins=max_bins)

    def observe(self, value: int) -> None:
        self.digest.observe(value)

    def merge_digest(self, shard: QuantileDigest) -> None:
        """Fold one fleet shard's digest into this series."""
        self.digest.merge(shard)

    def samples(self) -> list[tuple[str, float]]:
        rows: list[tuple[str, float]] = [
            (
                self.series(f'quantile="{_format_value(q)}"'),
                self.digest.quantile(q),
            )
            for q in self.quantiles
        ]
        rows.append((self.series(suffix="_sum"), self.digest.total))
        rows.append((self.series(suffix="_count"), self.digest.count))
        return rows


class MetricsRegistry:
    """Named metric families, rendered in one stable-ordered exposition.

    Constructors are get-or-create: asking twice for the same name *and*
    labels returns the same object, and asking for a family with a
    *different* type raises — the same discipline Prometheus client
    libraries enforce. ``labels`` address one child of a family
    (``repro_walk_access_time_slots{shard="2"}``); all children of a
    family share one type and render under one header.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._family_types: dict[str, type] = {}

    def _get_or_create(
        self, cls, name: str, *args, labels=None, **kwargs
    ):
        key = _series_name(name, _label_signature(labels or {}))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}"
                )
            return existing
        family = self._family_types.get(name)
        if family is not None and family is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{family.metric_type}, not {cls.metric_type}"
            )
        metric = cls(name, *args, labels=labels, **kwargs)
        self._metrics[key] = metric
        self._family_types[name] = cls
        return metric

    def counter(
        self, name: str, help: str = "", *, labels=None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "", *, labels=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        *,
        labels=None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, buckets, labels=labels
        )

    def summary(
        self,
        name: str,
        help: str = "",
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        max_bins: int = 256,
        *,
        labels=None,
    ) -> Summary:
        return self._get_or_create(
            Summary, name, help, quantiles, max_bins, labels=labels
        )

    def __contains__(self, name: str) -> bool:
        # A family name matches whether its children are labelled or not;
        # a full series key ('name{a="b"}') matches its exact child.
        return name in self._metrics or name in self._family_types

    def family(self, name: str) -> "list[_Metric]":
        """Every child of family ``name`` (empty when unregistered).

        The evaluation surface the SLO watchdog reads: summing a
        counter family's children gives the fleet-wide total whether
        the harness registered them labelled (per shard) or not.
        """
        return [m for m in self._metrics.values() if m.name == name]

    def __len__(self) -> int:
        return len(self._metrics)

    # -- the PerfRecorder bridge --------------------------------------------
    def absorb_perf(
        self,
        perf: PerfRecorder | dict,
        *,
        prefix: str = "repro",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Adopt a recorder's (or ``snapshot()``'s) totals as counters.

        Safe to call on every scrape: counters adopt the latest running
        total, they are never incremented twice for the same work.
        ``labels`` scope the absorbed series to one child — the cluster
        harness absorbs each shard's recorder with
        ``labels={"shard": …}`` so per-shard accounting survives into
        the exposition.
        """
        snapshot = perf.snapshot() if isinstance(perf, PerfRecorder) else perf
        for name, value in snapshot.get("counters", {}).items():
            self.counter(
                perf_counter_metric_name(name, prefix=prefix),
                f"perf counter {name}",
                labels=labels,
            ).set_total(value)
        for name, seconds in snapshot.get("timers", {}).items():
            self.counter(
                perf_timer_metric_name(name, prefix=prefix),
                f"perf timer {name} (seconds)",
                labels=labels,
            ).set_total(seconds)

    # -- exposition ---------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4).

        Children of one family (same name, different labels) render
        consecutively under a single ``# HELP`` / ``# TYPE`` header, as
        the format requires — grouping is by family name, never by the
        naive sort of series keys (which would interleave ``foo`` /
        ``foobar`` / ``foo{…}``).
        """
        families: dict[str, list[_Metric]] = {}
        for metric in self._metrics.values():
            families.setdefault(metric.name, []).append(metric)
        lines: list[str] = []
        for name in sorted(families):
            children = sorted(
                families[name], key=lambda m: m.label_signature
            )
            lines.append(f"# HELP {name} {_escape_help(children[0].help)}")
            lines.append(f"# TYPE {name} {children[0].metric_type}")
            for metric in children:
                for series, value in metric.samples():
                    lines.append(f"{series} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""


def declare_perf_baseline(
    registry: MetricsRegistry,
    names: Iterable[str] = DEFAULT_PERF_BASELINE,
    *,
    prefix: str = "repro",
) -> None:
    """Pre-register the standard perf counter families at zero.

    A fresh station that has served nothing still exposes the full
    station / fleet / replan vocabulary, so scrapers and alerting rules
    never see series flicker into existence.
    """
    for name in names:
        registry.counter(
            perf_counter_metric_name(name, prefix=prefix),
            f"perf counter {name}",
        )
