"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` states an objective over series the registry
already holds — a quantile of a :class:`~repro.obs.metrics.Summary`
("p99 access time stays under four cycles") or a ratio of counter
families ("under 1% of walks abandon") — and the
:class:`SLOWatchdog` evaluates every spec each time the driving loop
calls :meth:`SLOWatchdog.observe` with the current logical slot.

Alerting follows the multi-window burn-rate discipline (the
Google-SRE shape): a spec fires only when *both* a fast window (pages
on sharp regressions quickly) and a slow window (suppresses blips)
burn error budget faster than ``burn_threshold``. Evaluation is pure
arithmetic over sampled registry snapshots keyed by logical slot —
no wall clocks — so a seeded run alerts identically every time.

Every evaluation updates three gauge families on the registry —
``repro_slo_burn_rate{slo=…}``, ``repro_slo_firing{slo=…}`` and
``repro_slo_objective{slo=…}`` — so the existing ``/metrics``
endpoint exposes SLO health with zero extra plumbing. A state change
emits an :class:`~repro.obs.events.AlertFired` trace event, and a
firing edge triggers the flight recorder (when one is attached): the
alert itself becomes a postmortem bundle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .events import NULL_TRACER, AlertFired, Tracer
from .metrics import MetricsRegistry, Summary

__all__ = ["SLOSpec", "SLOWatchdog", "default_slos"]


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over registry series.

    ``kind`` selects the evaluation:

    ``"quantile"``
        ``metric`` names a summary family; the measured value is the
        worst (max) ``quantile`` estimate across its children, and the
        burn rate is ``value / objective`` — budget burns when the
        latency quantile exceeds the objective.
    ``"ratio"``
        ``bad`` / ``total`` name counter families; the measured value
        is the windowed event ratio ``Δbad / Δtotal`` and the burn
        rate is ``ratio / objective`` — the error budget is the
        objective itself.

    ``fast_window`` / ``slow_window`` are in logical slots; the alert
    fires only while *both* windows burn above ``burn_threshold``.
    """

    name: str
    kind: str
    objective: float
    description: str = ""
    metric: str = ""
    quantile: float = 0.99
    bad: Sequence[str] = field(default_factory=tuple)
    total: Sequence[str] = field(default_factory=tuple)
    fast_window: int = 64
    slow_window: int = 512
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("quantile", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if self.kind == "quantile" and not self.metric:
            raise ValueError("quantile SLOs need a metric family name")
        if self.kind == "ratio" and (not self.bad or not self.total):
            raise ValueError("ratio SLOs need bad and total families")
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ValueError(
                "windows must satisfy 1 <= fast_window <= slow_window"
            )


def default_slos(cycle_length: int = 32) -> list[SLOSpec]:
    """The stock objectives of a live deployment, scaled to the cycle.

    * p99 access time within four cycles (a lossless walk needs at
      most two; four leaves one retry's headroom);
    * abandonment under 1% of finished walks;
    * cutover retries (walks restarted by a replan) under 25% of
      fetches — replans should be riding, not thrashing, the fleet.
    """
    return [
        SLOSpec(
            name="access_p99",
            kind="quantile",
            metric="repro_walk_access_time_slots",
            quantile=0.99,
            objective=4.0 * cycle_length,
            description="p99 access time stays within four cycles",
            fast_window=2 * cycle_length,
            slow_window=16 * cycle_length,
        ),
        SLOSpec(
            name="abandonment",
            kind="ratio",
            bad=("repro_walk_abandoned_total",),
            total=(
                "repro_walk_completed_total",
                "repro_walk_abandoned_total",
            ),
            objective=0.01,
            description="under 1% of walks abandon",
            fast_window=2 * cycle_length,
            slow_window=16 * cycle_length,
        ),
        SLOSpec(
            name="cutover_retries",
            kind="ratio",
            bad=("repro_net_tuner_cutovers_total",),
            total=("repro_net_tuner_fetches_total",),
            objective=0.25,
            description="cutover restarts under 25% of fetches",
            fast_window=2 * cycle_length,
            slow_window=16 * cycle_length,
        ),
    ]


class SLOWatchdog:
    """Evaluate SLO specs over a registry; alert on burn, with memory.

    Drive it from whatever owns logical time::

        watchdog = SLOWatchdog(registry, default_slos(cycle), tracer=t)
        ...
        alerts = watchdog.observe(current_slot)

    ``observe`` samples the registry, evaluates every spec's two burn
    windows, updates the ``repro_slo_*`` gauges, and returns the
    :class:`~repro.obs.events.AlertFired` events for every spec whose
    firing state *changed* (edges only — a steady burn does not spam).
    A firing edge also triggers ``recorder`` with the alert's words.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: Iterable[SLOSpec] | None = None,
        *,
        tracer: Tracer | None = None,
        flight_recorder=None,
    ) -> None:
        self.registry = registry
        self.specs = list(specs) if specs is not None else default_slos()
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO spec names must be unique")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = flight_recorder
        self._history: dict[str, deque] = {
            spec.name: deque() for spec in self.specs
        }
        self._firing: dict[str, bool] = {
            spec.name: False for spec in self.specs
        }
        for spec in self.specs:
            labels = {"slo": spec.name}
            registry.gauge(
                "repro_slo_objective",
                "declared SLO objective",
                labels=labels,
            ).set(spec.objective)
            registry.gauge(
                "repro_slo_burn_rate",
                "fast-window error-budget burn rate",
                labels=labels,
            )
            registry.gauge(
                "repro_slo_firing",
                "1 while the SLO alert is firing",
                labels=labels,
            )

    # -- sampling ------------------------------------------------------------
    def _family_total(self, names: Sequence[str]) -> float:
        total = 0.0
        for name in names:
            for child in self.registry.family(name):
                total += getattr(child, "value", 0.0)
        return total

    def _quantile_value(self, spec: SLOSpec) -> float:
        worst = 0.0
        for child in self.registry.family(spec.metric):
            if isinstance(child, Summary) and child.digest.count > 0:
                worst = max(worst, float(child.digest.quantile(spec.quantile)))
        return worst

    def _sample(self, spec: SLOSpec) -> tuple:
        if spec.kind == "quantile":
            return (self._quantile_value(spec),)
        return (
            self._family_total(spec.bad),
            self._family_total(spec.total),
        )

    @staticmethod
    def _window_delta(history: deque, slot: int, window: int) -> tuple:
        """The sample deltas across ``window`` slots ending at ``slot``."""
        newest = history[-1][1]
        baseline = history[0][1]
        for sample_slot, sample in history:
            if sample_slot >= slot - window:
                break
            baseline = sample
        return tuple(n - b for n, b in zip(newest, baseline))

    def _burn(self, spec: SLOSpec, slot: int, window: int) -> tuple[float, float]:
        """(measured value, burn rate) of one window."""
        history = self._history[spec.name]
        if spec.kind == "quantile":
            cutoff = slot - window
            values = [s[0] for t, s in history if t >= cutoff]
            value = max(values) if values else 0.0
            return value, value / spec.objective
        bad, total = self._window_delta(history, slot, window)
        ratio = bad / total if total > 0 else 0.0
        return ratio, ratio / spec.objective

    # -- evaluation ----------------------------------------------------------
    def observe(self, slot: int) -> list[AlertFired]:
        """Sample at logical ``slot``; return firing-state *changes*."""
        changed: list[AlertFired] = []
        for spec in self.specs:
            history = self._history[spec.name]
            history.append((slot, self._sample(spec)))
            # Drop samples older than the slow window (keep one before
            # the horizon as the window baseline).
            horizon = slot - spec.slow_window
            while len(history) > 2 and history[1][0] < horizon:
                history.popleft()
            value, fast_burn = self._burn(spec, slot, spec.fast_window)
            _, slow_burn = self._burn(spec, slot, spec.slow_window)
            labels = {"slo": spec.name}
            self.registry.gauge(
                "repro_slo_burn_rate", labels=labels
            ).set(fast_burn)
            firing = (
                fast_burn > spec.burn_threshold
                and slow_burn > spec.burn_threshold
            )
            self.registry.gauge(
                "repro_slo_firing", labels=labels
            ).set(1.0 if firing else 0.0)
            if firing == self._firing[spec.name]:
                continue
            self._firing[spec.name] = firing
            alert = AlertFired(
                slo=spec.name,
                state="firing" if firing else "resolved",
                value=value,
                threshold=spec.objective,
                window_slots=spec.fast_window,
                burn_rate=fast_burn,
            )
            changed.append(alert)
            if self.tracer.enabled:
                self.tracer.emit(alert)
            if firing and self.recorder is not None:
                self.recorder.trigger(
                    "alert",
                    detail=(
                        f"slo {spec.name}: measured {value:g} against "
                        f"objective {spec.objective:g} "
                        f"(burn {fast_burn:.2f}x over "
                        f"{spec.fast_window} slots)"
                    ),
                    tracer=self.tracer,
                )
        return changed

    @property
    def firing(self) -> list[str]:
        """Names of the specs currently in the firing state."""
        return sorted(
            name for name, state in self._firing.items() if state
        )
