"""Causal spans over logical air time, composing with the ``Tracer`` protocol.

A *span* is one named stretch of logical slots attributed to one
component — a server replan, a store publish, a station cutover, one
tuner walk segment — linked into a causal tree by ``(trace_id,
span_id, parent_id)``. Spans ride the existing event stream as
:class:`~repro.obs.events.SpanFinished` records (emitted once, at
completion), so every sink, file format, and CLI that understands
trace events already understands spans.

:class:`SpanTracer` is a *decorator* over any existing tracer: it
forwards ``emit`` to the wrapped sink and mirrors its ``enabled``
flag, so it slots into every ``tracer=`` parameter in the codebase
without signature changes and keeps the NULL-guard zero-overhead
contract — a disabled sink means call sites never construct a span.
Components that know how to open spans detect the capability with
:func:`span_tracer_of` (which just isinstance-checks), and components
that only emit flat events keep working unchanged.

Identifiers are **deterministic**: each tracer allocates u32 ids from
a counter salted by its ``namespace`` (crc32-derived high bits), never
from clocks or randomness, so a seeded run produces the same causal
tree every time and ids fit the wire-v3 envelope's u32 fields. A root
span's ``span_id`` doubles as its ``trace_id``.

Reconstruction (:func:`span_tree`) and the containment checks
(:func:`check_span_tree`) close the loop with :mod:`repro.obs.attrib`:
a walk's segment spans tile its access time exactly, so
``sum(segment durations) == attrib access_time`` per walk and
``sum(child spans) <= parent`` on the infra chain.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, NamedTuple

from .events import (
    NULL_TRACER,
    SpanFinished,
    Tracer,
    WalkFinished,
    event_from_dict,
)

__all__ = [
    "TraceContext",
    "NO_TRACE",
    "ActiveSpan",
    "SpanTracer",
    "span_tracer_of",
    "SpanNode",
    "span_tree",
    "check_span_tree",
    "reconcile_with_attrib",
    "format_span_tree",
]

_U32 = 0xFFFFFFFF


class TraceContext(NamedTuple):
    """The compact wire-propagated form of a span: who to blame.

    ``trace_id`` names the causal tree, ``span_id`` the node new work
    should parent onto. Both are u32; ``(0, 0)`` means "no context"
    (and keeps untraced wire envelopes byte-identical to v1/v2).
    """

    trace_id: int
    span_id: int

    @property
    def present(self) -> bool:
        return self.trace_id != 0 or self.span_id != 0


NO_TRACE = TraceContext(0, 0)


class ActiveSpan:
    """A span that has begun; call :meth:`end` exactly once to emit it.

    Holds only logical state (ids, name, start slot, attrs) — no
    clocks. ``context`` is what travels on the wire so downstream work
    can parent onto this span.
    """

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "component",
        "start_slot",
        "attrs",
        "ended",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        *,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        component: str,
        start_slot: int,
        attrs: Iterable = (),
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.start_slot = start_slot
        self.attrs = list(
            attrs.items() if isinstance(attrs, Mapping) else attrs
        )
        self.ended = False

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def child(
        self,
        name: str,
        start_slot: int,
        *,
        component: str = "",
        attrs: Iterable = (),
    ) -> "ActiveSpan":
        """Open a span parented onto this one, in the same trace."""
        return self._tracer.begin(
            name,
            start_slot,
            parent=self.context,
            component=component or self.component,
            attrs=attrs,
        )

    def end(self, end_slot: int, **attrs) -> SpanFinished:
        """Close the span at ``end_slot`` (inclusive) and emit it."""
        if self.ended:
            raise RuntimeError(f"span {self.name!r} already ended")
        self.ended = True
        if attrs:
            self.attrs.extend(attrs.items())
        return self._tracer.finish(
            name=self.name,
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_slot=self.start_slot,
            end_slot=end_slot,
            component=self.component,
            attrs=self.attrs,
        )


class SpanTracer:
    """Span-capable decorator over any :class:`~repro.obs.events.Tracer`.

    Forwards every ``emit`` to the wrapped ``sink`` and mirrors its
    ``enabled`` flag, so it can stand wherever a plain tracer does.
    ``begin``/``finish`` allocate deterministic ids and emit
    :class:`SpanFinished` records through the same sink.

    ``namespace`` salts the id space (high bits from crc32) so two
    tracers feeding one sink — e.g. per-shard tracers in a cluster —
    cannot collide; within one namespace ids are a plain counter.
    """

    __slots__ = ("sink", "enabled", "namespace", "_base", "_next")

    def __init__(self, sink: Tracer | None = None, *, namespace: str = "") -> None:
        self.sink = NULL_TRACER if sink is None else sink
        self.enabled = self.sink.enabled
        self.namespace = namespace
        if namespace:
            self._base = (zlib.crc32(namespace.encode("utf-8")) & 0x7FF) << 20
        else:
            self._base = 0
        self._next = 1

    def emit(self, event) -> None:
        self.sink.emit(event)

    def _alloc(self) -> int:
        span_id = (self._base | (self._next & 0xFFFFF)) & _U32
        self._next += 1
        return span_id or 1

    def begin(
        self,
        name: str,
        start_slot: int,
        *,
        parent: TraceContext | None = None,
        component: str = "",
        attrs: Iterable = (),
    ) -> ActiveSpan:
        """Open a span; a missing/absent parent makes it a trace root."""
        span_id = self._alloc()
        if parent is not None and parent.present:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = span_id, 0
        return ActiveSpan(
            self,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            component=component,
            start_slot=start_slot,
            attrs=attrs,
        )

    def finish(
        self,
        *,
        name: str,
        trace_id: int,
        span_id: int = 0,
        parent_id: int = 0,
        start_slot: int,
        end_slot: int,
        component: str = "",
        attrs: Iterable = (),
    ) -> SpanFinished:
        """Emit a completed span in one shot (id allocated if absent).

        A zero ``trace_id`` makes the span a root of its own fresh
        trace — the span_id doubles as the trace_id, exactly as in
        :meth:`begin`. Walk segments that ran under an untraced
        schedule (the bootstrap program) use this so they still tile
        the walk's access time instead of vanishing.
        """
        span_id = (span_id or self._alloc()) & _U32
        span = SpanFinished(
            trace_id=(trace_id & _U32) or span_id,
            span_id=span_id,
            parent_id=parent_id & _U32,
            name=name,
            start_slot=start_slot,
            end_slot=end_slot,
            component=component,
            attrs=tuple(
                attrs.items() if isinstance(attrs, Mapping) else attrs
            ),
        )
        if self.sink.enabled:
            self.sink.emit(span)
        return span


def span_tracer_of(tracer) -> SpanTracer | None:
    """The span capability of ``tracer``, or ``None``.

    Call sites that *open* spans (station publish, walk segments) use
    this once at setup so the hot path stays a plain ``None`` check.
    """
    return tracer if isinstance(tracer, SpanTracer) else None


# ---------------------------------------------------------------------------
# reconstruction
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One reconstructed span plus its children, sorted by start slot."""

    span: SpanFinished
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration_slots(self) -> int:
        return self.span.duration_slots

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def _as_span(record) -> SpanFinished | None:
    if isinstance(record, SpanFinished):
        return record
    if isinstance(record, Mapping) and record.get("kind") == "span_finished":
        return event_from_dict(dict(record))
    return None


def span_tree(
    events: Iterable, *, trace_id: int | None = None
) -> list[SpanNode]:
    """Rebuild causal trees from a mixed event stream.

    Accepts typed events or raw JSONL records (non-span records are
    skipped), optionally filtered to one ``trace_id``. Returns the
    roots sorted by ``(start_slot, span_id)``; orphans — children
    whose parent never closed a span in this stream — surface as
    roots so a truncated ring still renders.
    """
    spans: list[SpanFinished] = []
    for record in events:
        span = _as_span(record)
        if span is None:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        spans.append(span)
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.span.parent_id)
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    order = lambda n: (n.span.start_slot, n.span.span_id)  # noqa: E731
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    return roots


def check_span_tree(roots: list[SpanNode]) -> list[str]:
    """Structural violations of the causal-containment contract.

    Within one parent: children may not start before their parent
    (causality), and ``sum(child spans) <= parent`` is asserted over
    the parent's *infra* children (a store publish and a station
    cutover nested inside one replan). Children carrying a ``walk``
    attr are fan-out — many concurrent walk segments under one
    cutover legitimately overlap *each other* — so they are
    start-checked only.
    """
    problems: list[str] = []
    for root in roots:
        for node in root.walk():
            parent = node.span
            nested = []
            for child_node in node.children:
                child = child_node.span
                if child.start_slot < parent.start_slot:
                    problems.append(
                        f"span {child.name}#{child.span_id} starts at "
                        f"slot {child.start_slot}, before its parent "
                        f"{parent.name}#{parent.span_id} "
                        f"(slot {parent.start_slot})"
                    )
                if "walk" not in dict(child.attrs):
                    nested.append(child)
            if nested:
                total = sum(s.duration_slots for s in nested)
                if total > parent.duration_slots:
                    problems.append(
                        f"children of {parent.name}#{parent.span_id} sum "
                        f"to {total} slots, exceeding the parent's "
                        f"{parent.duration_slots}"
                    )
    return problems


def reconcile_with_attrib(
    events: Iterable,
) -> tuple[dict[int, dict], list[str]]:
    """Cross-check walk segment spans against phase attribution.

    For every walk id that both finished (``walk_finished``) and
    carries segment spans (``walk.run`` / ``walk.restart``), the
    segments must *tile* the walk: their inclusive durations sum
    exactly to the walk's measured access time — the same exactness
    invariant :mod:`repro.obs.attrib` enforces for phases. Returns
    ``(per_walk, problems)`` where ``per_walk[walk]`` holds
    ``{"access_time", "segments", "segment_slots"}``.
    """
    finished: dict[int, int] = {}
    segments: dict[int, list[SpanFinished]] = {}
    for record in events:
        span = _as_span(record)
        if span is not None:
            if span.name in ("walk.run", "walk.restart"):
                attrs = dict(span.attrs)
                walk = int(attrs.get("walk", -1))
                segments.setdefault(walk, []).append(span)
            continue
        if isinstance(record, WalkFinished):
            if not record.abandoned:
                finished[record.walk] = record.access_time
        elif (
            isinstance(record, Mapping)
            and record.get("kind") == "walk_finished"
        ):
            if not record.get("abandoned", False):
                finished[int(record.get("walk", -1))] = int(
                    record["access_time"]
                )
    per_walk: dict[int, dict] = {}
    problems: list[str] = []
    for walk, spans in sorted(segments.items()):
        total = sum(span.duration_slots for span in spans)
        access = finished.get(walk)
        per_walk[walk] = {
            "access_time": access,
            "segments": len(spans),
            "segment_slots": total,
        }
        if access is None:
            continue
        if total != access:
            problems.append(
                f"walk {walk}: segment spans sum to {total} slots but "
                f"measured access time is {access}"
            )
    return per_walk, problems


def format_span_tree(
    roots: list[SpanNode], *, reconciliation: dict[int, dict] | None = None
) -> str:
    """Render causal trees as an indented text view with durations."""
    lines: list[str] = []
    for root in roots:
        lines.append(
            f"trace {root.span.trace_id:#010x}"
            if root.span.parent_id == 0
            else f"trace {root.span.trace_id:#010x} (orphaned subtree)"
        )
        _render(root, "", lines)
    if reconciliation:
        lines.append("")
        lines.append("walk segment reconciliation (vs obs attrib):")
        for walk, info in sorted(reconciliation.items()):
            access = info["access_time"]
            verdict = (
                "exact"
                if access is not None and info["segment_slots"] == access
                else ("unfinished" if access is None else "MISMATCH")
            )
            lines.append(
                f"  walk {walk}: {info['segments']} segment(s), "
                f"{info['segment_slots']} slot(s), "
                f"access_time={access if access is not None else '?'} "
                f"[{verdict}]"
            )
    return "\n".join(lines)


def _render(node: SpanNode, indent: str, lines: list[str]) -> None:
    span = node.span
    attrs = dict(span.attrs)
    extras = ""
    if attrs:
        shown = ", ".join(
            f"{k}={attrs[k]}" for k in sorted(attrs) if k != "note"
        )
        if shown:
            extras = f"  {{{shown}}}"
    lines.append(
        f"{indent}- {span.name} "
        f"[{span.start_slot}..{span.end_slot}] "
        f"({span.duration_slots} slot(s))"
        f"{'  <' + span.component + '>' if span.component else ''}"
        f"{extras}"
    )
    for child in node.children:
        _render(child, indent + "  ", lines)
