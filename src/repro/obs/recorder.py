"""The always-on flight recorder: bounded recall, dumped on anomaly.

Production telemetry has a blind spot: the run that *fails* is the one
nobody was tracing. The flight recorder closes it the way avionics do —
every component streams its recent events into a small bounded ring
(:meth:`FlightRecorder.ring` hands each component a tracer it can tee
into its normal chain), costing O(capacity) memory and one deque append
per event, cheap enough to leave on always. When an anomaly fires —
parity failure, non-zero unaccounted frames, an abandoned-walk spike, a
:class:`~repro.sched.store.StoreError`, an SLO alert —
:meth:`FlightRecorder.trigger` freezes the rings into a correlated
*postmortem bundle*: one JSON file holding the last N events of every
component, the spans among them still linked by ``(trace_id, span_id,
parent_id)``, plus the trigger itself.

``repro.cli obs postmortem`` loads a bundle and prints the causal
chain ending at the trigger (:func:`causal_chain` /
:func:`format_postmortem`): the most recent span before the dump,
climbed parent-by-parent to its trace root — replan → store publish →
station cutover → the walk segment that was on the air when things
went wrong.

Bundles land in ``dump_dir`` (default: the ``REPRO_POSTMORTEM_DIR``
environment variable, if set), named by a monotone sequence so a
crashing run can dump several without clobbering; ``keep`` bounds how
many survive. With no directory configured the trigger still records
in memory (:attr:`FlightRecorder.triggers`) and the bundle is
available via :meth:`FlightRecorder.snapshot`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Iterable, Mapping

from .events import RecorderTriggered, Tracer, event_to_dict
from .spans import SpanNode, span_tree

__all__ = [
    "FlightRecorder",
    "load_bundle",
    "causal_chain",
    "format_postmortem",
    "bundle_span_tree",
    "POSTMORTEM_DIR_ENV",
]

BUNDLE_FORMAT = 1

#: Environment variable naming the default postmortem directory.
POSTMORTEM_DIR_ENV = "REPRO_POSTMORTEM_DIR"


class _ComponentRing:
    """The tracer facade one component tees its events into."""

    enabled = True
    __slots__ = ("_recorder", "_component")

    def __init__(self, recorder: "FlightRecorder", component: str) -> None:
        self._recorder = recorder
        self._component = component

    def emit(self, event) -> None:
        self._recorder.observe(self._component, event)


class FlightRecorder:
    """Bounded per-component recall with anomaly-triggered dumps.

    Parameters
    ----------
    capacity:
        Events retained per component ring (oldest evicted first).
    dump_dir:
        Where postmortem bundles are written. ``None`` falls back to
        ``$REPRO_POSTMORTEM_DIR`` at trigger time; if that is unset
        too, triggers record in memory only.
    keep:
        Maximum bundle files kept in ``dump_dir`` (oldest pruned).
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        dump_dir: str | None = None,
        keep: int = 16,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.keep = keep
        self._rings: dict[str, deque] = {}
        self._seq = 0
        #: Every :class:`RecorderTriggered` this recorder fired, in order.
        self.triggers: list[RecorderTriggered] = []

    # -- intake --------------------------------------------------------------
    def ring(self, component: str) -> Tracer:
        """A tracer that records ``component``'s events into its ring.

        Tee it into the component's normal tracer chain
        (:class:`~repro.obs.events.TeeTracer`); handing the same
        component name out twice shares one ring.
        """
        self._rings.setdefault(component, deque(maxlen=self.capacity))
        return _ComponentRing(self, component)

    def observe(self, component: str, event) -> None:
        """Record one event (typed or raw dict) for ``component``."""
        ring = self._rings.get(component)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[component] = ring
        ring.append(event)

    # -- the dump ------------------------------------------------------------
    def snapshot(
        self, *, reason: str = "", detail: str = ""
    ) -> dict:
        """The current rings as a JSON-able bundle dict."""
        components = {}
        for name in sorted(self._rings):
            records = []
            for event in self._rings[name]:
                if isinstance(event, Mapping):
                    records.append(dict(event))
                else:
                    records.append(event_to_dict(event))
            components[name] = records
        return {
            "format": BUNDLE_FORMAT,
            "reason": reason,
            "detail": detail,
            "components": components,
        }

    def trigger(
        self,
        reason: str,
        detail: str = "",
        *,
        tracer: Tracer | None = None,
    ) -> str:
        """Dump a postmortem bundle for an anomaly; returns its path.

        The bundle freezes every ring as it stands, appends the
        trigger record itself (so the chain visibly *ends* at the
        anomaly), and prunes old bundles past ``keep``. The returned
        path is ``""`` when no dump directory is configured. When
        ``tracer`` is enabled the trigger is also emitted into the
        normal trace stream, so a JSONL trace shows where its run's
        postmortems were cut.
        """
        bundle = self.snapshot(reason=reason, detail=detail)
        total = sum(len(records) for records in bundle["components"].values())
        directory = self.dump_dir or os.environ.get(POSTMORTEM_DIR_ENV) or ""
        path = ""
        if directory:
            os.makedirs(directory, exist_ok=True)
            self._seq += 1
            slug = "".join(
                c if c.isalnum() or c in "-_" else "-" for c in reason
            )
            path = os.path.join(
                directory, f"postmortem-{self._seq:04d}-{slug}.json"
            )
        event = RecorderTriggered(
            reason=reason, detail=detail, bundle=path, events=total
        )
        self.triggers.append(event)
        bundle["trigger"] = event_to_dict(event)
        if path:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, separators=(",", ":"))
                handle.write("\n")
            self._prune(directory)
        if tracer is not None and tracer.enabled:
            tracer.emit(event)
        return path

    def _prune(self, directory: str) -> None:
        bundles = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("postmortem-") and name.endswith(".json")
        )
        for name in bundles[: max(0, len(bundles) - self.keep)]:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass


# ---------------------------------------------------------------------------
# reading bundles back
# ---------------------------------------------------------------------------

def load_bundle(path: str) -> dict:
    """Load one postmortem bundle; raises ``ValueError`` if malformed."""
    with open(path, encoding="utf-8") as handle:
        bundle = json.load(handle)
    if not isinstance(bundle, dict) or "components" not in bundle:
        raise ValueError(f"{path} is not a postmortem bundle")
    return bundle


def _bundle_events(bundle: dict) -> Iterable[dict]:
    for name in sorted(bundle.get("components", {})):
        yield from bundle["components"][name]


def causal_chain(bundle: dict) -> list[dict]:
    """The span chain ending at the bundle's trigger, root first.

    Anchors on the most recent span recorded before the dump —
    preferring spans that carry a ``walk`` attr (the leaf of the
    replan → publish → cutover → walk-segment chain) — and climbs
    ``parent_id`` links to the trace root. The trigger record itself
    is appended last, so the printed chain reads cause → … → anomaly.
    """
    spans: dict[int, dict] = {}
    anchor: dict | None = None
    for record in _bundle_events(bundle):
        if record.get("kind") != "span_finished":
            continue
        spans[record["span_id"]] = record
        attrs = dict(record.get("attrs", ()))
        if anchor is None or "walk" in attrs or "walk" not in dict(
            anchor.get("attrs", ())
        ):
            anchor = record
    chain: list[dict] = []
    seen: set[int] = set()
    node = anchor
    while node is not None and node["span_id"] not in seen:
        seen.add(node["span_id"])
        chain.append(node)
        node = spans.get(node.get("parent_id", 0))
    chain.reverse()
    trigger = bundle.get("trigger")
    if trigger:
        chain.append(trigger)
    return chain


def format_postmortem(bundle: dict) -> str:
    """Human-readable postmortem: the trigger, the chain, the rings."""
    lines: list[str] = []
    trigger = bundle.get("trigger", {})
    lines.append(
        f"postmortem: {bundle.get('reason') or trigger.get('reason', '?')}"
    )
    detail = bundle.get("detail") or trigger.get("detail", "")
    if detail:
        lines.append(f"  {detail}")
    lines.append("")
    chain = causal_chain(bundle)
    if chain:
        lines.append("causal chain (root cause first):")
        for index, record in enumerate(chain):
            indent = "  " * index
            if record.get("kind") == "recorder_triggered":
                lines.append(
                    f"{indent}!! trigger: {record.get('reason')} "
                    f"{record.get('detail', '')}".rstrip()
                )
            else:
                attrs = dict(record.get("attrs", ()))
                extras = "".join(
                    f" {k}={attrs[k]}" for k in sorted(attrs)
                )
                lines.append(
                    f"{indent}- {record.get('name')} "
                    f"[{record.get('start_slot')}.."
                    f"{record.get('end_slot')}]"
                    f" span={record.get('span_id'):#x}"
                    f"{extras}"
                )
    else:
        lines.append("causal chain: no spans recorded before the trigger")
    lines.append("")
    components = bundle.get("components", {})
    lines.append("flight rings:")
    for name in sorted(components):
        records = components[name]
        kinds: dict[str, int] = {}
        for record in records:
            kinds[record.get("kind", "?")] = (
                kinds.get(record.get("kind", "?"), 0) + 1
            )
        summary = ", ".join(f"{k}×{v}" for k, v in sorted(kinds.items()))
        lines.append(f"  {name}: {len(records)} event(s) ({summary})")
    return "\n".join(lines)


def bundle_span_tree(bundle: dict) -> list[SpanNode]:
    """The bundle's spans reassembled into causal trees."""
    return span_tree(_bundle_events(bundle))
