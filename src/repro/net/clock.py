"""The station's slot clock: logical air time, optionally wall-paced.

Every measurement in this repository is denominated in *slots* — the
broadcast medium's unit of time. A live station therefore needs one
authority for "which absolute slot is on air", and that is this clock.

Two modes:

* ``slot_duration > 0`` — real-time pacing: slot ``n`` goes on air
  ``n · slot_duration`` seconds after :meth:`start`. Consumers
  :meth:`wait_for` a future slot and genuinely sleep (a tuner's doze).
* ``slot_duration == 0`` (default) — free-running logical time: the
  clock still ticks (push transports need a tick to air on) but
  :meth:`wait_for` never blocks. The broadcast is cyclic and the fault
  pattern is a pure function of (channel, absolute slot), so an airing's
  content is fully determined whether it is served at its wall-clock
  instant or immediately — this is what lets a loadtest run as fast as
  the hardware allows while keeping slot-denominated measurements
  exactly reproducible.

Tick subscribers (:meth:`on_tick`) are invoked synchronously inside the
clock task with the newly aired slot number; the UDP push interface uses
this to fan each slot's frames out to its subscribers.
"""

from __future__ import annotations

import asyncio
from typing import Callable

__all__ = ["SlotClock"]


class SlotClock:
    """Monotonic 1-based absolute-slot counter driving a station's air."""

    def __init__(self, slot_duration: float = 0.0) -> None:
        if slot_duration < 0:
            raise ValueError("slot_duration must be >= 0")
        self.slot_duration = slot_duration
        self.aired = 0  # highest absolute slot that has gone on air
        self._event = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._subscribers: list[Callable[[int], None]] = []

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def on_tick(self, callback: Callable[[int], None]) -> None:
        """Call ``callback(slot)`` each time a slot goes on air."""
        self._subscribers.append(callback)

    def start(self) -> None:
        """Begin ticking; idempotent."""
        if not self.running:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-slot-clock"
            )

    async def aclose(self) -> None:
        """Stop ticking; idempotent, safe mid-tick."""
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while True:
            self.aired += 1
            for callback in self._subscribers:
                callback(self.aired)
            self._event.set()
            self._event = asyncio.Event()
            if self.slot_duration > 0:
                await asyncio.sleep(self.slot_duration)
            else:
                await asyncio.sleep(0)

    async def wait_for(self, slot: int) -> None:
        """Doze until absolute ``slot`` has gone on air.

        Free-running clocks (``slot_duration == 0``) return immediately:
        logical time has no future, every airing's content is already
        determined (see module docstring).
        """
        if self.slot_duration == 0:
            return
        while self.aired < slot and self.running:
            await self._event.wait()
