"""Live broadcast transport: an asyncio station, tuner clients, load harness.

Everything below the paper's model is simulated in-process elsewhere in
the repository; this package is where frames actually cross sockets:

* :class:`~repro.net.station.BroadcastStation` — compiles a plan's
  broadcast program to version-1 wire frames and airs one frame per
  channel per slot tick, over a TCP fan-out control protocol (default)
  or UDP datagram push, with per-connection send queues, backpressure,
  optional :mod:`repro.faults` injection and clean shutdown;
* :class:`~repro.net.tuner.TunerClient` — an asyncio receiver that
  tunes in mid-cycle, dozes between the slots the pointer walk names,
  hops channels on cross-channel pointers and recovers from lost or
  corrupt airings, all by driving the shared
  :class:`~repro.client.walk.PointerWalk` state machine;
* :func:`~repro.net.harness.run_loadtest` — a fleet of concurrent tuner
  coroutines with Poisson arrivals, reporting throughput, access- and
  tuning-time distributions and loss/retry counters, plus the loopback
  **parity gate**: at zero loss the fleet's measurements must equal the
  in-process simulator's on the identical plan and request trace.
"""

from .clock import SlotClock
from .harness import (
    LoadReport,
    build_demo_plan,
    build_demo_program,
    make_request_trace,
    run_loadtest,
    simulator_baseline,
    trace_simulator,
    write_loadtest_json,
)
from .station import BroadcastStation
from .tuner import TunerClient, TunerProtocolError

__all__ = [
    "SlotClock",
    "BroadcastStation",
    "TunerClient",
    "TunerProtocolError",
    "LoadReport",
    "build_demo_plan",
    "build_demo_program",
    "make_request_trace",
    "run_loadtest",
    "simulator_baseline",
    "trace_simulator",
    "write_loadtest_json",
]
