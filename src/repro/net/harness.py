"""Load harness: thousands of concurrent tuners against a loopback station.

The ROADMAP's north star is "heavy traffic from millions of users, as
fast as the hardware allows"; this module is the measuring stick. It
spawns a :class:`~repro.net.station.BroadcastStation` on loopback, then
a fleet of tuner coroutines with Poisson arrivals — each one connection,
one full pointer walk — and reports throughput, access- and tuning-time
distributions, loss/retry/abandon counters and a frame-accounting
balance (every envelope the station sent must have been consumed by
exactly one walk read; anything else is a transport bug).

The **parity gate** is the harness's correctness anchor: on a zero-loss
station the socket fleet replays the *identical* request trace through
the in-process simulator (:func:`repro.client.protocol.object_walk`)
and demands bit-equality of every access time and tuning time — the
network layer may add wall-clock latency, never slot-denominated error.
``python -m repro.cli loadtest --check-parity`` (and ``make bench-net``)
exit non-zero if the gate fails.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from math import ceil
from time import perf_counter

import numpy as np

from ..broadcast.pointers import BroadcastProgram
from ..client.protocol import RecoveryPolicy, object_walk
from ..client.walk import WalkResult
from ..faults import FaultConfig
from ..io.wire import DEFAULT_BUCKET_SIZE, encode_program
from ..io.wire_client import WireAccessRecord, wire_walk
from ..obs.attrib import AttributionCollector
from ..obs.events import TeeTracer, Tracer
from ..obs.metrics import MetricsRegistry, slot_buckets
from ..perf import PerfRecorder
from ..planners import plan_catalog
from ..workloads.weights import zipf_weights
from .station import BroadcastStation
from .tuner import TunerClient

__all__ = [
    "LoadReport",
    "build_demo_plan",
    "build_demo_program",
    "make_request_trace",
    "simulator_baseline",
    "trace_simulator",
    "run_loadtest",
    "write_loadtest_json",
]


def build_demo_plan(
    *,
    items: int = 24,
    channels: int = 3,
    fanout: int = 3,
    planner: str = "sorting",
    theta: float = 0.95,
    seed: int = 2000,
):
    """The full :class:`~repro.planners.PlanResult` behind the demo program.

    The result — not just its compiled program — is what a
    :class:`~repro.sched.ScheduleStore` publishes (the plan document
    carries cost/method/stats alongside the schedule), so the sched
    harness and CLI build plans through this and compile on demand.
    """
    rng = np.random.default_rng(seed)
    labels = [f"K{index:03d}" for index in range(items)]
    weights = zipf_weights(rng, items, theta=theta)
    return plan_catalog(
        labels, list(weights), channels, method=planner, fanout=fanout
    )


def build_demo_program(
    *,
    items: int = 24,
    channels: int = 3,
    fanout: int = 3,
    planner: str = "sorting",
    theta: float = 0.95,
    seed: int = 2000,
) -> BroadcastProgram:
    """A compiled broadcast program for serving/loadtest demos.

    Zipf-weighted catalog of ``items`` string keys, planned end-to-end
    through :func:`repro.planners.plan_catalog` — the same facade the
    sharded cluster plans each shard through, so a demo program and a
    one-shard cluster are built by the identical path.
    """
    return build_demo_plan(
        items=items,
        channels=channels,
        fanout=fanout,
        planner=planner,
        theta=theta,
        seed=seed,
    ).compile()


def make_request_trace(
    program: BroadcastProgram, requests: int, rng: np.random.Generator
) -> list[tuple[str, int]]:
    """Draw ``requests`` (key, tune_slot) pairs, the workload's trace.

    Targets are drawn proportionally to their access weights and tune-in
    slots uniformly over the cycle — the same model as
    :func:`repro.client.simulator.simulate_workload`, reified as a list
    so the identical trace can be replayed through both the socket
    fleet and the in-process simulator.
    """
    targets = program.schedule.tree.data_nodes()
    weights = np.array([t.weight for t in targets], dtype=float)
    if weights.sum() == 0:
        probabilities = np.full(len(targets), 1.0 / len(targets))
    else:
        probabilities = weights / weights.sum()
    target_draws = rng.choice(len(targets), size=requests, p=probabilities)
    slot_draws = rng.integers(1, program.cycle_length + 1, size=requests)
    return [
        (targets[int(t)].label, int(s))
        for t, s in zip(target_draws, slot_draws)
    ]


def simulator_baseline(
    program: BroadcastProgram, trace: list[tuple[str, int]]
) -> dict:
    """Replay ``trace`` through the in-process object-level walk."""
    leaf_of = {leaf.label: leaf for leaf in program.schedule.tree.data_nodes()}
    records = [
        object_walk(program, leaf_of[key], tune_slot)
        for key, tune_slot in trace
    ]
    return {
        "requests": len(records),
        "access_times": [r.access_time for r in records],
        "tuning_times": [r.tuning_time for r in records],
        "mean_access_time": (
            sum(r.access_time for r in records) / len(records)
            if records
            else 0.0
        ),
        "mean_tuning_time": (
            sum(r.tuning_time for r in records) / len(records)
            if records
            else 0.0
        ),
    }


def trace_simulator(
    program: BroadcastProgram,
    trace: list[tuple[str, int]],
    *,
    tracer: Tracer | None = None,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
) -> list[WireAccessRecord]:
    """Replay ``trace`` through the frame-level simulator, narrating it.

    Encodes ``program`` once and drives the same
    :class:`~repro.client.walk.PointerWalk` the live tuners use, frame
    by frame, over *lossless* air — emitting the identical
    ``slot_read``/``channel_hop``/``walk_finished`` event vocabulary
    into ``tracer``. This is the reference side of ``repro obs diff``:
    diff a live (possibly lossy) fleet trace against this replay and
    the first divergent (channel, slot) is where the air departed from
    the model.
    """
    frames = encode_program(program, bucket_size)
    return [
        wire_walk(frames, key, tune_slot, tracer=tracer, walk_id=index)
        for index, (key, tune_slot) in enumerate(trace)
    ]


@dataclass
class LoadReport:
    """Everything one loadtest run measured."""

    tuners: int
    completed: int
    abandoned: int
    wall_seconds: float
    walks_per_second: float
    mean_access_time: float
    mean_tuning_time: float
    access_percentiles: dict[str, float]
    tuning_percentiles: dict[str, float]
    mean_channel_switches: float
    lost_buckets: int
    corrupt_buckets: int
    retries: int
    wasted_probes: int
    frames_requested: int
    frames_answered: int
    frames_read: int
    unaccounted_frames: int
    parity: dict | None = None
    perf: dict = field(default_factory=dict)

    @property
    def parity_ok(self) -> bool:
        """True when no parity check ran or the check matched exactly."""
        return self.parity is None or bool(self.parity["exact_match"])

    @property
    def accounting_ok(self) -> bool:
        return self.unaccounted_frames == 0

    def to_dict(self) -> dict:
        record = {
            name: getattr(self, name)
            for name in (
                "tuners",
                "completed",
                "abandoned",
                "wall_seconds",
                "walks_per_second",
                "mean_access_time",
                "mean_tuning_time",
                "access_percentiles",
                "tuning_percentiles",
                "mean_channel_switches",
                "lost_buckets",
                "corrupt_buckets",
                "retries",
                "wasted_probes",
                "frames_requested",
                "frames_answered",
                "frames_read",
                "unaccounted_frames",
                "parity",
                "perf",
            )
        }
        record["checks"] = {
            "zero_unaccounted_frames": self.accounting_ok,
            "parity_exact": self.parity_ok,
        }
        return record


def _percentiles(values: list[int]) -> dict[str, float]:
    """Nearest-rank percentiles, the :mod:`repro.obs.digest` convention.

    ``rank = max(1, ceil(q·n))``, value = the rank-th order statistic —
    an *observed* value, never an interpolation, and bit-identical to
    what :class:`~repro.obs.digest.QuantileDigest` reports for the same
    multiset. The loadtest JSON and a ``/metrics`` scrape therefore can
    never disagree on identical data (they previously could:
    ``np.percentile`` interpolates linearly). Zero completed walks
    yield an explicit all-zero dict — no NaN ever reaches a BENCH
    record.
    """
    if not values:
        return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(values)
    count = len(ordered)

    def nearest_rank(q: float) -> float:
        rank = max(1, ceil(q * count))
        return float(ordered[rank - 1])

    return {
        "p50": nearest_rank(0.50),
        "p90": nearest_rank(0.90),
        "p99": nearest_rank(0.99),
        "max": float(ordered[-1]),
    }


async def run_loadtest(
    program: BroadcastProgram,
    *,
    tuners: int = 1000,
    rng: np.random.Generator | None = None,
    trace: list[tuple[str, int]] | None = None,
    faults: FaultConfig | None = None,
    policy: RecoveryPolicy | None = None,
    slot_duration: float = 0.0,
    arrival_rate: float = 5000.0,
    max_open: int = 256,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    queue_limit: int = 64,
    check_parity: bool = False,
    perf: PerfRecorder | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    flight_recorder=None,
) -> LoadReport:
    """Air ``program`` on loopback and run a concurrent tuner fleet.

    Parameters
    ----------
    tuners:
        Fleet size; each tuner makes one connection and one full walk.
    rng:
        Drives the request trace and the Poisson arrival offsets
        (default: seeded generator 2000). Ignored for the trace when an
        explicit ``trace`` is given.
    trace:
        Optional pre-drawn (key, tune_slot) list; its length overrides
        ``tuners``.
    faults, policy:
        Unreliable-air config injected *at the station* and the client
        fleet's recovery policy.
    slot_duration:
        Station pacing in seconds per slot; 0 runs in logical time (as
        fast as the hardware allows).
    arrival_rate:
        Poisson arrival intensity in tuners/second; 0 starts everyone
        at once.
    max_open:
        Concurrency bound on simultaneously open connections (the
        fleet's coroutines all exist at once; sockets are throttled so
        a million-tuner ambition does not hit the fd limit head on).
    check_parity:
        Replay the identical trace through the in-process simulator and
        record exact-equality of every access and tuning time. Requires
        zero-loss air (``faults is None``).
    tracer:
        Optional :class:`~repro.obs.events.Tracer` shared by the
        station and the whole fleet — the live side of a trace diff.
        ``None`` (default) keeps the hot paths on the no-op tracer.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When
        given, an :class:`~repro.obs.attrib.AttributionCollector` is
        teed into the fleet's tracer so every completed walk feeds the
        registry's access/tuning/per-phase quantile summaries, the
        completed walks' access times fill a cycle-derived
        :func:`~repro.obs.metrics.slot_buckets` histogram, and the
        run's perf counters are absorbed — all purely observational:
        every measured number stays bit-identical to a run without it
        (the zero-overhead differential locks this).
    flight_recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder`. The
        station and the fleet tee their events into an always-on
        bounded ``fleet`` ring, and the run auto-dumps a postmortem
        bundle when an anomaly fires: a parity failure, non-zero
        unaccounted frames, or an abandoned-walk spike (>5% of the
        fleet). Purely observational, like ``metrics``.

    Returns the aggregated :class:`LoadReport`; ``report.accounting_ok``
    and ``report.parity_ok`` are the acceptance gates.
    """
    if check_parity and faults is not None:
        raise ValueError(
            "parity is defined against lossless air; drop faults= or "
            "check_parity="
        )
    if rng is None:
        rng = np.random.default_rng(2000)
    if trace is None:
        trace = make_request_trace(program, tuners, rng)
    tuners = len(trace)
    if arrival_rate > 0:
        offsets = np.cumsum(rng.exponential(1.0 / arrival_rate, size=tuners))
    else:
        offsets = np.zeros(tuners)

    collector: AttributionCollector | None = None
    if metrics is not None:
        collector = AttributionCollector(metrics)
        tracer = (
            collector if tracer is None else TeeTracer(tracer, collector)
        )
    if flight_recorder is not None:
        ring = flight_recorder.ring("fleet")
        tracer = ring if tracer is None else TeeTracer(tracer, ring)

    perf_recorder = perf if perf is not None else PerfRecorder()
    station = BroadcastStation(
        program,
        bucket_size=bucket_size,
        faults=faults,
        slot_duration=slot_duration,
        queue_limit=queue_limit,
        perf=perf_recorder,
        tracer=tracer,
    )
    gate = asyncio.Semaphore(max_open)
    results: list[WalkResult | None] = [None] * tuners
    failures: list[Exception] = []

    async def one_tuner(index: int, key: str, tune_slot: int) -> None:
        if offsets[index]:
            await asyncio.sleep(float(offsets[index]))
        async with gate:
            try:
                async with TunerClient(
                    station.host,
                    station.port,
                    policy=policy,
                    perf=perf_recorder,
                    tracer=tracer,
                ) as tuner:
                    results[index] = await tuner.fetch(
                        key, tune_slot, walk_id=index
                    )
            except Exception as error:  # accounted, not swallowed
                failures.append(error)

    started = perf_counter()
    async with station:
        await asyncio.gather(
            *(
                one_tuner(index, key, slot)
                for index, (key, slot) in enumerate(trace)
            )
        )
    wall = perf_counter() - started
    if failures:
        raise failures[0]

    walks = [result for result in results if result is not None]
    completed = [walk for walk in walks if not walk.abandoned]
    reads = sum(walk.tuning_time for walk in walks)
    if metrics is not None:
        # Fed after the fleet is done, from already-measured numbers —
        # exposition changes, measurements cannot.
        access_histogram = metrics.histogram(
            "repro_loadtest_access_time_slots",
            "access-time distribution of completed walks (slots)",
            buckets=slot_buckets(program.cycle_length),
        )
        for walk in completed:
            access_histogram.observe(walk.access_time)
        metrics.absorb_perf(perf_recorder)
    counters = perf_recorder.counters
    requested = counters.get("net.station.requests", 0)
    answered = counters.get("net.station.frames_sent", 0)
    perf_recorder.add_seconds("net.loadtest.seconds", wall)

    parity = None
    if check_parity:
        baseline = simulator_baseline(program, trace)
        fleet_access = [walk.access_time for walk in walks]
        fleet_tuning = [walk.tuning_time for walk in walks]
        parity = {
            "exact_match": (
                fleet_access == baseline["access_times"]
                and fleet_tuning == baseline["tuning_times"]
            ),
            "fleet_mean_access_time": (
                sum(fleet_access) / len(fleet_access) if fleet_access else 0.0
            ),
            "simulator_mean_access_time": baseline["mean_access_time"],
            "fleet_mean_tuning_time": (
                sum(fleet_tuning) / len(fleet_tuning) if fleet_tuning else 0.0
            ),
            "simulator_mean_tuning_time": baseline["mean_tuning_time"],
        }

    report = LoadReport(
        tuners=tuners,
        completed=len(completed),
        abandoned=len(walks) - len(completed),
        wall_seconds=wall,
        walks_per_second=len(walks) / wall if wall > 0 else 0.0,
        mean_access_time=(
            sum(w.access_time for w in completed) / len(completed)
            if completed
            else 0.0
        ),
        mean_tuning_time=(
            sum(w.tuning_time for w in completed) / len(completed)
            if completed
            else 0.0
        ),
        access_percentiles=_percentiles([w.access_time for w in completed]),
        tuning_percentiles=_percentiles([w.tuning_time for w in completed]),
        mean_channel_switches=(
            sum(w.channel_switches for w in completed) / len(completed)
            if completed
            else 0.0
        ),
        lost_buckets=sum(w.lost_buckets for w in walks),
        corrupt_buckets=sum(w.corrupt_buckets for w in walks),
        retries=sum(w.retries for w in walks),
        wasted_probes=sum(w.wasted_probes for w in walks),
        frames_requested=requested,
        frames_answered=answered,
        frames_read=reads,
        unaccounted_frames=answered - reads,
        parity=parity,
        perf=perf_recorder.snapshot(),
    )
    if flight_recorder is not None:
        if not report.parity_ok:
            flight_recorder.trigger(
                "parity_failure",
                detail=(
                    "fleet access/tuning times diverged from the "
                    "in-process simulator"
                ),
                tracer=tracer,
            )
        if report.unaccounted_frames != 0:
            flight_recorder.trigger(
                "unaccounted_frames",
                detail=(
                    f"{report.unaccounted_frames} frame(s) sent but never "
                    "consumed by a walk read"
                ),
                tracer=tracer,
            )
        if report.abandoned > max(1, tuners // 20):
            flight_recorder.trigger(
                "abandoned_spike",
                detail=(
                    f"{report.abandoned} of {tuners} walks abandoned "
                    "(>5% of the fleet)"
                ),
                tracer=tracer,
            )
    return report


def write_loadtest_json(
    path: str,
    report: LoadReport,
    config: dict,
    *,
    rev: str | None = None,
    timestamp: str | None = None,
) -> dict:
    """Persist one loadtest run as the ``BENCH_net.json`` record.

    ``rev``/``timestamp`` fill the shared :mod:`repro.bench_envelope`
    fields; the Makefile's ``bench-all`` passes them in.
    """
    from ..bench_envelope import stamp_record

    record = stamp_record(
        {
            "suite": "net-loadtest",
            "config": config,
            "result": report.to_dict(),
            "aggregate": {
                "walks_per_second": report.walks_per_second,
                "mean_access_time": report.mean_access_time,
                "mean_tuning_time": report.mean_tuning_time,
                "checks": report.to_dict()["checks"],
            },
        },
        rev=rev,
        timestamp=timestamp,
    )
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record
