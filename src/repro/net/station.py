"""The asyncio broadcast station: a compiled plan, actually on air.

The station takes a pointer-wired
:class:`~repro.broadcast.pointers.BroadcastProgram` (usually via
:meth:`repro.planners.PlanResult.compile` or
:meth:`repro.server.BroadcastServer.station`), encodes it to version-1
wire frames once, and airs it cyclically on a
:class:`~repro.net.clock.SlotClock` — one frame per channel per slot
tick — over one of two transports:

* **TCP fan-out** (default). Clients connect, receive a one-line JSON
  ``WELCOME`` (cycle length, channel count, bucket size, slot
  duration), then send ``LISTEN <channel> <absolute-slot>`` control
  lines — one per bucket the pointer walk names; the station answers
  each with that airing's envelope (:class:`repro.io.wire.AirFrame`)
  once the slot clock reaches it. A client that listens to nothing
  receives nothing: dozing costs the station no bandwidth, exactly the
  energy model of §2.1. Each connection has a bounded request queue and
  a single ordered sender task, so a slow client backpressures its own
  socket and nobody else's.
* **UDP push**. Clients send ``SUB <channel>`` datagrams and the
  station pushes every airing of that channel as it ticks, through
  bounded per-channel queues that drop-oldest under overload (counted
  in ``net.station.udp_dropped`` — a datagram medium loses frames, it
  does not queue them forever).

Unreliable air is simulated *at the station*, from the same seeded
:class:`~repro.faults.FaultInjector` the in-process stack uses: a LOST
outcome airs a lost-marker envelope (the tuned-in client hears
silence), a CORRUPT outcome airs byte-damaged payloads the receiver's
frame CRC catches. Outcomes and damage are pure functions of
(channel, absolute slot), so a socket fleet and the in-process
simulator experience the *same* channel — the foundation of the
loopback parity gate.

Shutdown is clean by construction: :meth:`aclose` (or the async context
manager) closes the listening socket, cancels every per-connection
task, flushes and closes writers, and stops the clock; all counters
survive in :attr:`perf`.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import json
from dataclasses import dataclass

import numpy as np

from ..broadcast.pointers import BroadcastProgram
from ..client.request import invalidate_request_caches
from ..faults import CORRUPT, LOST, FaultConfig, FaultInjector, corrupt_frame
from ..io.wire import (
    DEFAULT_BUCKET_SIZE,
    AirFrame,
    encode_air_frame,
    encode_program,
)
from ..obs.events import (
    NULL_TRACER,
    FrameDropped,
    ScheduleActivated,
    SlotAired,
    Tracer,
)
from ..perf import PerfRecorder
from .clock import SlotClock

__all__ = ["BroadcastStation"]

_QUEUE_SENTINEL = None


@dataclass(frozen=True)
class _Segment:
    """One contiguous stretch of air served by a single plan version.

    ``start`` is the first absolute slot the segment airs; segments are
    appended by :meth:`BroadcastStation.publish` with starts aligned to
    the previous segment's cycle grid, so the air is always a whole
    number of cycles of each plan — a cutover never truncates a cycle
    mid-way.

    ``trace_id``/``span_id`` are the causal context of the publish that
    created the segment (zeros when untraced); every airing of the
    segment carries them on the wire (v3 envelope), which is how a
    tuner's restarted walk learns which cutover to blame.
    """

    start: int
    version: int
    program: BroadcastProgram
    frames: list[list[bytes]]
    cycle_length: int
    trace_id: int = 0
    span_id: int = 0


class BroadcastStation:
    """Air one broadcast program over sockets until closed.

    Parameters
    ----------
    program:
        The pointer-wired cycle to air.
    bucket_size:
        Frame size in bytes (every airing is exactly this long).
    faults:
        Optional :class:`~repro.faults.FaultConfig`; ``None`` is perfect
        air. The injector is seeded by the config, never by wall time.
    slot_duration:
        Seconds per slot. 0 (default) free-runs: TCP requests are
        answered immediately (logical time), and is invalid for the UDP
        push transport, which needs real pacing.
    host, port:
        Bind address; port 0 picks a free port (read :attr:`port` after
        :meth:`start`).
    transport:
        ``"tcp"`` (LISTEN/answer fan-out) or ``"udp"`` (subscribe/push).
    queue_limit:
        Bound of each per-connection (TCP) or per-channel (UDP) send
        queue.
    perf:
        Optional shared :class:`~repro.perf.PerfRecorder`; a private one
        is created otherwise. Counters are namespaced
        ``net.station.*``.
    tracer:
        Optional :class:`~repro.obs.events.Tracer`. When enabled the
        station narrates every answered airing
        (:class:`~repro.obs.events.SlotAired`, one event per answered
        query of a coordinate), every UDP overload drop
        (:class:`~repro.obs.events.FrameDropped`) and — via the fault
        injector — every non-OK channel decision.
    schedule_version:
        :mod:`repro.sched` version of ``program``. 0 (default) airs
        unversioned version-1 envelopes — byte-identical to a station
        without versioning. Positive versions stamp every airing with
        the serving plan's version (wire v2), the signal a tuner's walk
        uses to detect a mid-walk cutover; new versions go on air via
        :meth:`publish`.
    """

    def __init__(
        self,
        program: BroadcastProgram,
        *,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        faults: FaultConfig | None = None,
        slot_duration: float = 0.0,
        host: str = "127.0.0.1",
        port: int = 0,
        transport: str = "tcp",
        queue_limit: int = 64,
        perf: PerfRecorder | None = None,
        tracer: Tracer | None = None,
        schedule_version: int = 0,
    ) -> None:
        if transport not in ("tcp", "udp"):
            raise ValueError(
                f"unknown transport {transport!r}; expected 'tcp' or 'udp'"
            )
        if transport == "udp" and slot_duration <= 0:
            raise ValueError(
                "the UDP push transport needs real pacing; pass a "
                "positive slot_duration"
            )
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if schedule_version < 0:
            raise ValueError("schedule_version must be >= 0")
        self.program = program
        self.bucket_size = bucket_size
        self.frames = encode_program(program, bucket_size)
        self.cycle_length = program.cycle_length
        self.channels = program.channels
        # The version timeline: one segment per published plan, starts
        # strictly increasing and cycle-boundary aligned. Version 0
        # (the default) airs unversioned version-1 envelopes, so a
        # station that never publishes is byte-identical on the wire to
        # the pre-versioning implementation.
        self.version = schedule_version
        self._timeline: list[_Segment] = [
            _Segment(1, schedule_version, program, self.frames,
                     program.cycle_length)
        ]
        self._starts = [1]
        self._frontier = 0  # highest absolute slot ever answered
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = (
            FaultInjector(faults, tracer=self.tracer)
            if faults is not None
            else None
        )
        self.clock = SlotClock(slot_duration)
        self.host = host
        self.port = port
        self.transport = transport
        self.queue_limit = queue_limit
        self.perf = perf if perf is not None else PerfRecorder()

        self._server: asyncio.base_events.Server | None = None
        self._datagram: asyncio.DatagramTransport | None = None
        self._connections: set[asyncio.Task] = set()
        self._udp_subscribers: dict[int, set[tuple]] = {}
        self._udp_queues: dict[int, asyncio.Queue] = {}
        self._udp_pumps: list[asyncio.Task] = []
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "BroadcastStation":
        """Bind the transport and begin airing."""
        if self._started:
            return self
        self._started = True
        if self.transport == "tcp":
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            if self.clock.slot_duration > 0:
                self.clock.start()
        else:
            loop = asyncio.get_running_loop()
            self._datagram, _ = await loop.create_datagram_endpoint(
                lambda: _UdpAirProtocol(self),
                local_addr=(self.host, self.port),
            )
            self.port = self._datagram.get_extra_info("sockname")[1]
            for channel in range(1, self.channels + 1):
                queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_limit)
                self._udp_queues[channel] = queue
                self._udp_pumps.append(
                    loop.create_task(self._udp_pump(channel, queue))
                )
            self.clock.on_tick(self._udp_tick)
            self.clock.start()
        return self

    async def aclose(self) -> None:
        """Stop airing: close sockets, cancel tasks, keep the counters."""
        if self._closed:
            return
        self._closed = True
        await self.clock.aclose()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections) + self._udp_pumps:
            task.cancel()
        for task in list(self._connections) + self._udp_pumps:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._connections.clear()
        self._udp_pumps.clear()
        if self._datagram is not None:
            self._datagram.close()

    async def __aenter__(self) -> "BroadcastStation":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- the air itself -----------------------------------------------------
    def _segment_for(self, absolute_slot: int) -> _Segment:
        """The timeline segment active at ``absolute_slot``."""
        index = bisect.bisect_right(self._starts, absolute_slot) - 1
        return self._timeline[index]

    def next_boundary(self, after_slot: int) -> int:
        """First cycle-boundary start slot strictly after ``after_slot``.

        Boundaries are counted on the *last* published segment's grid:
        its start plus a whole number of its cycles — the earliest slot
        a new version may legally take over.
        """
        last = self._timeline[-1]
        if after_slot < last.start:
            after_slot = last.start
        elapsed = after_slot - last.start + 1
        cycles = (elapsed + last.cycle_length - 1) // last.cycle_length
        return last.start + max(1, cycles) * last.cycle_length

    def publish(
        self,
        program: BroadcastProgram,
        *,
        version: int,
        activate_at_slot: int | None = None,
        trace: tuple[int, int] | None = None,
    ) -> int:
        """Put a new plan version on the air at a cycle boundary.

        The swap is atomic at ``activate_at_slot``: every airing before
        it comes from the old segment, every airing from it onward from
        the new one — :meth:`airing` stays a pure function of
        (timeline, faults, coordinates), so a concurrent fleet still
        reproduces exactly. ``activate_at_slot`` must lie on the
        current last segment's cycle grid, after its start, and must
        not already have been answered from the old plan; ``None``
        picks the first boundary after everything answered or aired so
        far. Returns the activation slot.

        ``trace`` is an optional ``(trace_id, span_id)`` causal context
        (typically a ``station.cutover`` span the caller opened — see
        :mod:`repro.obs.spans`); the new segment's airings carry it on
        the wire so every walk the cutover restarts parents onto it.

        The retired program's engine caches are dropped
        (:func:`repro.client.request.invalidate_request_caches`): its
        frame grid and dense compilation describe air that ends at the
        boundary.
        """
        if version <= self.version:
            raise ValueError(
                f"schedule versions must increase (have {self.version}, "
                f"got {version})"
            )
        if program.channels != self.channels:
            raise ValueError(
                f"published program has {program.channels} channels; the "
                f"station airs {self.channels} (channel count is fixed "
                "for the station's lifetime)"
            )
        last = self._timeline[-1]
        if activate_at_slot is None:
            activate_at_slot = self.next_boundary(
                max(self._frontier, self.clock.aired)
            )
        if activate_at_slot <= last.start:
            raise ValueError(
                f"activation slot {activate_at_slot} precedes the current "
                f"segment (starts at {last.start})"
            )
        if (activate_at_slot - last.start) % last.cycle_length != 0:
            raise ValueError(
                f"activation slot {activate_at_slot} is not a cycle "
                f"boundary of the current segment (start {last.start}, "
                f"cycle {last.cycle_length})"
            )
        if activate_at_slot <= self._frontier:
            raise ValueError(
                f"activation slot {activate_at_slot} was already answered "
                "from the current plan; activate at a future boundary"
            )
        frames = encode_program(program, self.bucket_size)
        trace_id, span_id = trace if trace is not None else (0, 0)
        self._timeline.append(
            _Segment(
                activate_at_slot, version, program, frames,
                program.cycle_length,
                trace_id=trace_id, span_id=span_id,
            )
        )
        self._starts.append(activate_at_slot)
        invalidate_request_caches(last.program)
        self.version = version
        self.perf.count("sched.publishes")
        if self.tracer.enabled:
            self.tracer.emit(
                ScheduleActivated(
                    version=version,
                    activate_slot=activate_at_slot,
                    cycle_length=program.cycle_length,
                )
            )
        return activate_at_slot

    def airing(self, channel: int, absolute_slot: int) -> AirFrame:
        """What actually went out on ``channel`` at ``absolute_slot``.

        A pure function of the version timeline, the fault config and
        the coordinates — the same airing is the same bytes no matter
        when or how often it is asked for, which is what makes a
        concurrent fleet's measurements reproducible.
        """
        if not 1 <= channel <= self.channels:
            raise ValueError(f"channel must be in 1..{self.channels}")
        if absolute_slot < 1:
            raise ValueError("absolute_slot is 1-based")
        segment = self._segment_for(absolute_slot)
        slot = (absolute_slot - segment.start) % segment.cycle_length + 1
        frame = segment.frames[channel - 1][slot - 1]
        if absolute_slot > self._frontier:
            self._frontier = absolute_slot
        fate = (
            self._injector.outcome(channel, absolute_slot)
            if self._injector is not None
            else "ok"
        )
        if self.tracer.enabled:
            self.tracer.emit(
                SlotAired(
                    channel=channel, absolute_slot=absolute_slot, fate=fate
                )
            )
        if fate == LOST:
            self.perf.count("net.station.lost_aired")
            return AirFrame(
                channel=channel,
                absolute_slot=absolute_slot,
                lost=True,
                schedule_version=segment.version,
                trace_id=segment.trace_id,
                span_id=segment.span_id,
            )
        if fate == CORRUPT:
            # Damage is seeded per airing so repeat queries agree.
            rng = np.random.default_rng(
                [self.faults.seed, 0xC0, channel, absolute_slot]
            )
            self.perf.count("net.station.corrupt_aired")
            frame = corrupt_frame(frame, rng)
        return AirFrame(
            channel=channel,
            absolute_slot=absolute_slot,
            payload=frame,
            schedule_version=segment.version,
            trace_id=segment.trace_id,
            span_id=segment.span_id,
        )

    def welcome(self) -> bytes:
        """The one-line JSON metadata greeting new TCP connections."""
        return (
            json.dumps(
                {
                    "cycle_length": self.cycle_length,
                    "channels": self.channels,
                    "bucket_size": self.bucket_size,
                    "slot_duration": self.clock.slot_duration,
                }
            ).encode()
            + b"\n"
        )

    # -- TCP fan-out --------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.perf.count("net.station.connections")
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_limit)
        sender = asyncio.get_running_loop().create_task(
            self._send_loop(queue, writer)
        )
        flush = False
        try:
            writer.write(self.welcome())
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = self._parse_control(line)
                if request == "bye":
                    break
                if request is None:
                    self.perf.count("net.station.protocol_errors")
                    break
                # Bounded queue: a client outpacing its own socket
                # backpressures here, not in station memory.
                await queue.put(request)
                self.perf.count("net.station.requests")
            flush = True  # orderly goodbye: answer what was already asked
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if flush:
                try:
                    queue.put_nowait(_QUEUE_SENTINEL)
                except asyncio.QueueFull:
                    flush = False
            if not flush:
                sender.cancel()
            try:
                await sender
            except BaseException:
                # Sender failure, or our own cancellation mid-flush
                # (station shutdown): take the sender down with us
                # rather than leak it.
                sender.cancel()
                with contextlib.suppress(BaseException):
                    await sender
            # BaseException (not Exception): a cancellation delivered in
            # this teardown must not make the handler end *cancelled* —
            # asyncio's stream wrapper logs a spurious traceback for
            # every such handler, and the socket is being closed anyway.
            writer.close()
            with contextlib.suppress(BaseException):
                await writer.wait_closed()
            self._connections.discard(task)

    def _parse_control(self, line: bytes) -> tuple[int, int] | str | None:
        parts = line.split()
        if not parts:
            return None
        if parts[0] == b"BYE":
            return "bye"
        if parts[0] == b"LISTEN" and len(parts) == 3:
            try:
                channel, slot = int(parts[1]), int(parts[2])
            except ValueError:
                return None
            if 1 <= channel <= self.channels and slot >= 1:
                return (channel, slot)
        return None

    async def _send_loop(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one connection's LISTENs, in order, paced by the clock."""
        while True:
            request = await queue.get()
            if request is _QUEUE_SENTINEL:
                return
            channel, slot = request
            await self.clock.wait_for(slot)
            air = self.airing(channel, slot)
            writer.write(encode_air_frame(air))
            await writer.drain()
            self.perf.count("net.station.frames_sent")

    # -- UDP push -----------------------------------------------------------
    def _udp_tick(self, slot: int) -> None:
        for channel, subscribers in self._udp_subscribers.items():
            if not subscribers:
                continue
            queue = self._udp_queues[channel]
            if queue.full():
                # A datagram medium drops under overload; oldest first.
                with contextlib.suppress(asyncio.QueueEmpty):
                    dropped = queue.get_nowait()
                    if self.tracer.enabled:
                        self.tracer.emit(
                            FrameDropped(
                                channel=channel, absolute_slot=dropped
                            )
                        )
                self.perf.count("net.station.udp_dropped")
            queue.put_nowait(slot)

    async def _udp_pump(self, channel: int, queue: asyncio.Queue) -> None:
        while True:
            slot = await queue.get()
            air = self.airing(channel, slot)
            datagram = encode_air_frame(air)
            for address in tuple(self._udp_subscribers.get(channel, ())):
                assert self._datagram is not None
                self._datagram.sendto(datagram, address)
                self.perf.count("net.station.udp_sent")

    def _udp_control(self, data: bytes, address: tuple) -> None:
        parts = data.split()
        if len(parts) == 2 and parts[0] in (b"SUB", b"UNSUB"):
            try:
                channel = int(parts[1])
            except ValueError:
                channel = -1
            if 1 <= channel <= self.channels:
                members = self._udp_subscribers.setdefault(channel, set())
                if parts[0] == b"SUB":
                    members.add(address)
                    self.perf.count("net.station.udp_subscribed")
                else:
                    members.discard(address)
                return
        self.perf.count("net.station.protocol_errors")


class _UdpAirProtocol(asyncio.DatagramProtocol):
    """Datagram endpoint: control messages in, airings out."""

    def __init__(self, station: BroadcastStation) -> None:
        self.station = station

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        self.station._udp_control(data, addr)
