"""The asyncio tuner: a mobile client on a real socket.

A :class:`TunerClient` is the live counterpart of
:func:`repro.io.wire_client.wire_walk` — the *same*
:class:`~repro.client.walk.PointerWalk` state machine, driven over a
TCP connection to a :class:`~repro.net.station.BroadcastStation`
instead of an in-memory frame grid. For each airing the walk names, the
tuner sends one ``LISTEN`` control line, dozes until the envelope
arrives (between those requests it reads nothing — selective tuning is
what the paper's tuning-time metric charges for), decodes the frame,
and feeds the machine: channel hops and loss recovery all fall out of
the shared walk logic.

Frames arrive through :class:`repro.io.wire.FrameStreamDecoder`, so the
tuner is indifferent to how TCP fragments the stream. A lost airing
arrives as a lost-marker envelope (the client was tuned in; it heard
nothing); a corrupted airing arrives as damaged bytes whose CRC check
fails in :func:`~repro.io.wire.decode_bucket` — both feed
:meth:`PointerWalk.on_loss` and recover per the configured
:class:`~repro.client.protocol.RecoveryPolicy`, mirroring
:func:`~repro.client.protocol.recovering_walk` slot for slot.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque

from ..client.protocol import RecoveryPolicy
from ..client.walk import PointerWalk, WalkResult
from ..exceptions import ReproError
from ..io.wire import AirFrame, FrameStreamDecoder, WireFormatError, decode_bucket
from ..obs.events import Tracer
from ..perf import PerfRecorder

__all__ = ["TunerClient", "TunerProtocolError"]

_READ_CHUNK = 4096


class TunerProtocolError(ReproError):
    """The station answered out of protocol (wrong airing, dead stream)."""


class TunerClient:
    """One mobile receiver connected to a station's TCP interface.

    Parameters
    ----------
    host, port:
        The station's bound address.
    policy:
        Loss-recovery policy for every fetch on this connection.
    perf:
        Optional shared recorder; counters are namespaced ``net.tuner.*``.
    tracer:
        Optional :class:`~repro.obs.events.Tracer` handed to every
        :class:`~repro.client.walk.PointerWalk` this tuner drives, so a
        live fleet narrates ``slot_read``/``channel_hop``/
        ``walk_finished`` events in the same coordinates as the
        in-process simulator.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RecoveryPolicy | None = None,
        perf: PerfRecorder | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy
        self.perf = perf if perf is not None else PerfRecorder()
        self.tracer = tracer
        self.cycle_length: int | None = None
        self.channels: int | None = None
        self.bucket_size: int | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._decoder = FrameStreamDecoder()
        self._arrived: deque[AirFrame] = deque()

    # -- lifecycle ----------------------------------------------------------
    async def connect(self) -> "TunerClient":
        """Open the connection and read the station's WELCOME metadata."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        line = await self._reader.readline()
        if not line:
            raise TunerProtocolError("station closed before WELCOME")
        try:
            welcome = json.loads(line)
            self.cycle_length = int(welcome["cycle_length"])
            self.channels = int(welcome["channels"])
            self.bucket_size = int(welcome["bucket_size"])
        except (ValueError, KeyError, TypeError) as error:
            raise TunerProtocolError(
                f"malformed WELCOME line {line!r}"
            ) from error
        self.perf.count("net.tuner.connections")
        return self

    async def aclose(self) -> None:
        """Say goodbye and close the socket; idempotent."""
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is None:
            return
        try:
            writer.write(b"BYE\n")
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def __aenter__(self) -> "TunerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- the access protocol -------------------------------------------------
    async def fetch(
        self, key: str, tune_slot: int, *, walk_id: int | None = None
    ) -> WalkResult:
        """Run one full access-protocol walk for ``key`` over the socket.

        ``tune_slot`` is the cycle-relative slot (1..cycle_length) the
        client tunes into channel 1 — identical semantics (and, at zero
        loss, identical measured numbers) to
        :func:`repro.client.protocol.object_walk` on the same program.
        ``walk_id`` stamps the traced events' ``walk`` correlation field
        so a concurrent fleet's interleaved trace stays attributable.
        """
        if self._reader is None or self.cycle_length is None:
            raise TunerProtocolError("not connected; call connect() first")
        walk = PointerWalk(
            key,
            tune_slot,
            self.cycle_length,
            policy=self.policy,
            tracer=self.tracer,
            walk_id=walk_id,
        )
        while (listen := walk.next_listen()) is not None:
            air = await self._listen(listen.channel, listen.absolute_slot)
            # Wire-propagated causal context (v3 envelopes) must reach
            # the walk before the version stamp: a cutover closes the
            # current segment span and the new one parents onto the
            # publish span this very frame carries.
            walk.observe_trace(air.trace_id, air.span_id)
            if walk.observe_version(air.schedule_version):
                # The air's schedule version changed under the walk
                # (the station cut over to a new plan); the walk has
                # already consumed this read and restarted from the
                # root per its policy — a recovery event, never a
                # corrupt bucket.
                self.perf.count("net.tuner.cutovers")
                continue
            if air.lost:
                walk.on_loss()
                self.perf.count("net.tuner.lost")
                continue
            slot = (listen.absolute_slot - 1) % self.cycle_length + 1
            try:
                bucket = decode_bucket(
                    air.payload, channel=listen.channel, offset=slot
                )
            except WireFormatError:
                # Damaged in flight: the CRC caught it, treat as loss.
                walk.on_loss(corrupt=True)
                self.perf.count("net.tuner.corrupt")
                continue
            walk.deliver(bucket)
            self.perf.count("net.tuner.frames")
        result = walk.result
        self.perf.count("net.tuner.fetches")
        self.perf.count("net.tuner.reads", result.tuning_time)
        self.perf.count("net.tuner.retries", result.retries)
        if result.abandoned:
            self.perf.count("net.tuner.abandoned")
        return result

    async def _listen(self, channel: int, absolute_slot: int) -> AirFrame:
        """Ask for one airing, doze until its envelope arrives."""
        assert self._writer is not None and self._reader is not None
        self._writer.write(b"LISTEN %d %d\n" % (channel, absolute_slot))
        await self._writer.drain()
        air = await self._next_air()
        if air.channel != channel or air.absolute_slot != absolute_slot:
            raise TunerProtocolError(
                f"asked for channel {channel} slot {absolute_slot}, "
                f"station aired channel {air.channel} slot "
                f"{air.absolute_slot}"
            )
        return air

    async def _next_air(self) -> AirFrame:
        assert self._reader is not None
        while not self._arrived:
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                raise TunerProtocolError("station hung up mid-walk")
            self._arrived.extend(self._decoder.feed(chunk))
        return self._arrived.popleft()
