"""Access-frequency generators for the paper's experiments.

* :func:`normal_weights` — the Fig. 14 workload: ``N(µ, σ)`` with
  µ = 100 and σ swept over {10, 20, 30, 40}; draws are clipped to a
  small positive floor so weights stay valid frequencies.
* :func:`uniform_weights` — the "given randomly" workload of Table 1.
* :func:`zipf_weights` — the classic skewed-popularity model used by the
  broadcast-disk literature ([Ach95]); not in this paper's evaluation
  but the natural stress workload for the heuristics benches.

All generators take an explicit :class:`numpy.random.Generator`; nothing
touches global RNG state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_weights", "normal_weights", "zipf_weights"]

_FLOOR = 1e-3


def uniform_weights(
    rng: np.random.Generator,
    count: int,
    low: float = 1.0,
    high: float = 100.0,
    integer: bool = False,
) -> list[float]:
    """``count`` weights uniform on [low, high); optionally integral."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if not low < high:
        raise ValueError("need low < high")
    draws = rng.uniform(low, high, size=count)
    if integer:
        draws = np.floor(draws)
    return [float(max(value, _FLOOR)) for value in draws]


def normal_weights(
    rng: np.random.Generator,
    count: int,
    mean: float = 100.0,
    sigma: float = 10.0,
) -> list[float]:
    """``count`` weights from N(mean, sigma), floored at a small positive.

    This is the Fig. 14 workload; with the paper's parameters (µ = 100,
    σ <= 40) the floor triggers with negligible probability.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    draws = rng.normal(mean, sigma, size=count)
    return [float(max(value, _FLOOR)) for value in draws]


def zipf_weights(
    rng: np.random.Generator,
    count: int,
    theta: float = 0.95,
    scale: float = 100.0,
    shuffle: bool = True,
) -> list[float]:
    """Zipf-like popularity: item ``r`` gets weight ``scale / r**theta``.

    ``shuffle`` permutes the ranks across positions so popularity is not
    correlated with key order (set false to model hot-keys-first
    catalogs).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if theta < 0:
        raise ValueError("theta must be >= 0")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = scale / np.power(ranks, theta)
    if shuffle:
        rng.shuffle(weights)
    return [float(max(value, _FLOOR)) for value in weights]
