"""Workload generation: weight distributions (§4's uniform and normal,
plus Zipf) and synthetic item catalogs for the examples."""

from .catalogs import CatalogItem, news_catalog, stock_catalog, weather_catalog
from .weights import normal_weights, uniform_weights, zipf_weights

__all__ = [
    "uniform_weights",
    "normal_weights",
    "zipf_weights",
    "CatalogItem",
    "stock_catalog",
    "news_catalog",
    "weather_catalog",
]
