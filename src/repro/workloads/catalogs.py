"""Synthetic item catalogs for examples and integration tests.

The paper's motivating applications are information-dissemination
services for mobile users — stock tickers, news headlines, weather
reports ([Fra98], [Ach95]). Each catalog yields ``(key, label, weight)``
triples with a realistic skew so the examples have something concrete to
index and broadcast. Keys are sortable, which the alphabetic-tree
builders require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .weights import zipf_weights

__all__ = ["CatalogItem", "stock_catalog", "news_catalog", "weather_catalog"]

_STOCK_SYMBOLS = [
    "AAPL", "AMD", "AMZN", "BA", "BAC", "CSCO", "CVX", "DELL", "DIS", "F",
    "GE", "GM", "GOOG", "HPQ", "IBM", "INTC", "JNJ", "JPM", "KO", "MCD",
    "MMM", "MRK", "MSFT", "NKE", "ORCL", "PFE", "PG", "T", "TXN", "UPS",
    "VZ", "WMT", "XOM", "XRX",
]

_NEWS_SECTIONS = [
    "arts", "business", "climate", "economy", "education", "elections",
    "health", "law", "local", "markets", "obituaries", "opinion",
    "politics", "science", "sports", "technology", "travel", "weather",
    "world",
]

_CITIES = [
    "amsterdam", "athens", "bangkok", "berlin", "boston", "cairo",
    "chicago", "delhi", "dublin", "geneva", "hsinchu", "istanbul",
    "jakarta", "kyoto", "lagos", "lima", "london", "madrid", "manila",
    "mumbai", "nairobi", "osaka", "oslo", "paris", "prague", "rome",
    "seattle", "seoul", "sydney", "taipei", "tokyo", "vienna", "warsaw",
    "zurich",
]


@dataclass(frozen=True)
class CatalogItem:
    """One broadcastable item: a sortable key, display label and weight."""

    key: str
    label: str
    weight: float


def _build(
    names: list[str], rng: np.random.Generator, count: int, theta: float
) -> list[CatalogItem]:
    if count < 1:
        raise ValueError("count must be >= 1")
    keys = []
    round_number = 0
    while len(keys) < count:
        suffix = "" if round_number == 0 else str(round_number)
        keys.extend(name + suffix for name in names)
        round_number += 1
    keys = sorted(keys[:count])
    weights = zipf_weights(rng, count, theta=theta)
    return [
        CatalogItem(key=key, label=key, weight=weight)
        for key, weight in zip(keys, weights)
    ]


def stock_catalog(
    rng: np.random.Generator, count: int = 32, theta: float = 0.95
) -> list[CatalogItem]:
    """Ticker symbols with Zipf-skewed quote popularity."""
    return _build(_STOCK_SYMBOLS, rng, count, theta)


def news_catalog(
    rng: np.random.Generator, count: int = 19, theta: float = 0.8
) -> list[CatalogItem]:
    """News sections; mild skew (front page dominates, tail still read)."""
    return _build(_NEWS_SECTIONS, rng, count, theta)


def weather_catalog(
    rng: np.random.Generator, count: int = 34, theta: float = 1.1
) -> list[CatalogItem]:
    """City weather reports; strong locality skew."""
    return _build(_CITIES, rng, count, theta)
