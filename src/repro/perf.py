"""Lightweight performance instrumentation for the hot paths.

The ROADMAP's north star ("as fast as the hardware allows", a measurable
per-PR perf trajectory) needs the solvers and the serving loop to report
*how much work they did*, not just their answers. This module is the
shared vocabulary for that: named monotonic counters and wall-clock
timers collected into a :class:`PerfRecorder`, threaded through
:class:`~repro.core.search.SearchResult`, the heuristics and
:class:`~repro.server.BroadcastServer`, and serialised by the
``bench --json`` runner (:mod:`repro.bench`) into ``BENCH_search.json``.

Design constraints:

* **Near-zero overhead when unused.** Everything is plain dict writes;
  no globals, no threads, no logging handlers. Callers that do not pass
  a recorder pay a single ``None`` check.
* **Composable.** Recorders :meth:`merge <PerfRecorder.merge>` so a
  suite runner can aggregate per-case recorders into one record.
* **Serialisable.** :meth:`PerfRecorder.snapshot` returns plain
  ``dict[str, int | float]`` data, ready for ``json.dump``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PerfRecorder", "Stopwatch"]


class Stopwatch:
    """A resumable wall-clock timer (``perf_counter`` based).

    ``elapsed`` accumulates across start/stop pairs; reading it while
    running includes the in-flight interval.
    """

    __slots__ = ("elapsed", "_started_at")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    def read(self) -> float:
        """Elapsed seconds so far, without stopping."""
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._started_at)


class PerfRecorder:
    """Named counters and wall-clock timers for one measured activity.

    Counters are monotonic integers (``count``); timers accumulate
    seconds (``timer`` context manager or ``add_seconds``). Both live in
    flat string-keyed dicts so a snapshot is directly JSON-able.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}

    # -- counters -----------------------------------------------------------
    def count(self, name: str, increment: int = 1) -> None:
        """Add ``increment`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite counter ``name`` (for externally computed totals)."""
        self.counters[name] = int(value)

    # -- timers -------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into timer ``name`` (accumulating)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, time.perf_counter() - started)

    def add_seconds(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    # -- aggregation / export ----------------------------------------------
    def merge(self, other: "PerfRecorder") -> "PerfRecorder":
        """Fold ``other``'s counters and timers into this recorder.

        Same-key entries **add** on both sides: merging two recorders
        that both timed ``"replan.seconds"`` yields the sum of their
        accumulated seconds, exactly as if every block had run against
        one recorder. A :meth:`timer` block still *open* on ``other``
        contributes nothing at merge time — an interval is committed to
        ``other`` (and only ``other``) when its block exits, so merging
        mid-flight never double-counts and never moves in-flight time
        between recorders. ``other`` is read, never mutated.
        """
        for name, value in other.counters.items():
            self.count(name, value)
        for name, seconds in other.timers.items():
            self.add_seconds(name, seconds)
        return self

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """Plain-dict copy: ``{"counters": {...}, "timers": {...}}``.

        Keys are sorted, so two recorders holding the same measurements
        serialise byte-identically regardless of the order the
        measurements arrived in — stable diffs for ``BENCH_*.json``
        files and the metrics exposition built on top.
        """
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "timers": {
                name: self.timers[name] for name in sorted(self.timers)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"{k}={v:.4f}s" for k, v in sorted(self.timers.items())]
        return f"<PerfRecorder {' '.join(parts) or 'empty'}>"
