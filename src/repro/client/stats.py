"""Distributional statistics of client access times.

Mean access time hides the tail a mobile user actually feels; this
module computes the *exact* distribution of access time over the
(uniform tune-in slot) × (weight-distributed target) product space —
no sampling — and summarises it with percentiles. Complements
:mod:`repro.client.simulator`'s means.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..broadcast.pointers import BroadcastProgram

__all__ = ["AccessDistribution", "access_time_distribution"]


@dataclass
class AccessDistribution:
    """Exact weighted distribution of a per-request integer metric.

    ``support`` lists the attainable values ascending; ``weights`` the
    matching probability masses (summing to 1).
    """

    support: list[int]
    weights: list[float]

    @property
    def mean(self) -> float:
        return sum(v * w for v, w in zip(self.support, self.weights))

    @property
    def minimum(self) -> int:
        return self.support[0]

    @property
    def maximum(self) -> int:
        return self.support[-1]

    def percentile(self, q: float) -> int:
        """Smallest value with cumulative probability >= ``q`` (0..100)."""
        if not 0 <= q <= 100:
            raise ValueError("q must be within 0..100")
        target = q / 100.0
        cumulative = 0.0
        for value, weight in zip(self.support, self.weights):
            cumulative += weight
            if cumulative >= target - 1e-12:
                return value
        return self.support[-1]

    def probability_at_most(self, value: int) -> float:
        """P(metric <= value)."""
        position = bisect.bisect_right(self.support, value)
        return sum(self.weights[:position])


def access_time_distribution(program: BroadcastProgram) -> AccessDistribution:
    """Exact access-time distribution of a compiled program.

    A request for item ``D`` (probability ``W(D)/ΣW``) with tune-in slot
    ``t`` (uniform over the cycle) takes ``(L - t + 1) + T(D)`` slots,
    so the distribution is a discrete convolution computed directly.
    """
    schedule = program.schedule
    cycle = program.cycle_length
    total_weight = schedule.tree.total_weight()
    masses: dict[int, float] = {}
    for node in schedule.tree.data_nodes():
        if total_weight == 0:
            break
        target_probability = node.weight / total_weight
        wait = schedule.slot_of(node)
        for tune in range(1, cycle + 1):
            access = (cycle - tune + 1) + wait
            masses[access] = masses.get(access, 0.0) + (
                target_probability / cycle
            )
    if not masses:
        return AccessDistribution([0], [1.0])
    support = sorted(masses)
    return AccessDistribution(support, [masses[v] for v in support])
