"""Mobile-client substrate: the pointer-following access protocol and the
workload simulator measuring access time, tuning time and channel
switches against a compiled broadcast program."""

from .protocol import AccessRecord, run_request
from .simulator import SimulationSummary, exact_averages, simulate_workload
from .stats import AccessDistribution, access_time_distribution

__all__ = [
    "AccessRecord",
    "run_request",
    "SimulationSummary",
    "simulate_workload",
    "exact_averages",
    "AccessDistribution",
    "access_time_distribution",
]
