"""Mobile-client substrate: the pointer-following access protocol (with
its loss-recovering variant), and the workload simulator measuring
access time, tuning time and channel switches against a compiled
broadcast program."""

from .protocol import (
    AccessRecord,
    RecoveredAccessRecord,
    RecoveryPolicy,
    run_request,
    run_request_recovering,
)
from .simulator import (
    SimulationSummary,
    exact_averages,
    simulate_workload,
    summarise_faulty_records,
)
from .stats import AccessDistribution, access_time_distribution
from .walk import Listen, LookupFailed, PointerWalk, WalkResult

__all__ = [
    "Listen",
    "LookupFailed",
    "PointerWalk",
    "WalkResult",
    "AccessRecord",
    "RecoveredAccessRecord",
    "RecoveryPolicy",
    "run_request",
    "run_request_recovering",
    "SimulationSummary",
    "simulate_workload",
    "summarise_faulty_records",
    "exact_averages",
    "AccessDistribution",
    "access_time_distribution",
]
