"""Mobile-client substrate: the pointer-following access protocol (with
its loss-recovering variant), the unified :func:`request` facade over
every walk engine, and the workload simulator measuring access time,
tuning time and channel switches against a compiled broadcast
program."""

from .protocol import (
    AccessRecord,
    RecoveredAccessRecord,
    RecoveryPolicy,
    object_walk,
    recovering_walk,
)
from .request import (
    EngineNotFound,
    WalkEngine,
    engines,
    get_engine,
    register_engine,
    request,
    unregister_engine,
)
from .simulator import (
    SimulationSummary,
    exact_averages,
    simulate_workload,
    summarise_faulty_records,
)
from .stats import AccessDistribution, access_time_distribution
from .walk import Listen, LookupFailed, PointerWalk, WalkResult

__all__ = [
    "Listen",
    "LookupFailed",
    "PointerWalk",
    "WalkResult",
    "AccessRecord",
    "RecoveredAccessRecord",
    "RecoveryPolicy",
    "object_walk",
    "recovering_walk",
    "EngineNotFound",
    "WalkEngine",
    "request",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engines",
    "SimulationSummary",
    "simulate_workload",
    "summarise_faulty_records",
    "exact_averages",
    "AccessDistribution",
    "access_time_distribution",
]
