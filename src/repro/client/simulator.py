"""Workload-level broadcast simulation.

Drives :func:`repro.client.protocol.object_walk` over many requests —
targets drawn proportionally to their access weights (the paper's model:
``W(D_i)`` *is* the request frequency), tune-in slots uniform over the
cycle — and aggregates access time, tuning time and channel switches.

:func:`exact_averages` enumerates *every* (tune slot, target) pair
instead of sampling, weighting targets by ``W``; its access-time average
provably equals :func:`repro.broadcast.metrics.expected_access_time`,
and the test suite asserts exactly that, closing the loop between the
analytic model and the pointer-level execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..broadcast.pointers import BroadcastProgram
from ..faults import FaultConfig, FaultInjector
from .protocol import (
    AccessRecord,
    RecoveredAccessRecord,
    RecoveryPolicy,
    object_walk,
    recovering_walk,
)

__all__ = [
    "SimulationSummary",
    "simulate_workload",
    "summarise_faulty_records",
    "exact_averages",
]


@dataclass
class SimulationSummary:
    """Aggregate results of a batch of simulated requests.

    The fault fields are zero for lossless runs; under a fault model the
    means cover *completed* requests only — ``abandoned`` counts the
    walks that hit their give-up bound, and including their truncated
    times in a latency mean would understate the damage.
    """

    requests: int
    mean_access_time: float
    mean_probe_wait: float
    mean_data_wait: float
    mean_tuning_time: float
    mean_channel_switches: float
    abandoned: int = 0
    lost_buckets: int = 0
    corrupt_buckets: int = 0
    retries: int = 0
    wasted_probes: int = 0

    @classmethod
    def from_records(
        cls, records: list[AccessRecord], weights: list[float] | None = None
    ) -> "SimulationSummary":
        """Average the records; ``weights`` enables weighted aggregation."""
        if not records:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if weights is None:
            weights = [1.0] * len(records)
        total = sum(weights)

        def mean(values: list[int]) -> float:
            return sum(v * w for v, w in zip(values, weights)) / total

        return cls(
            requests=len(records),
            mean_access_time=mean([r.access_time for r in records]),
            mean_probe_wait=mean([r.probe_wait for r in records]),
            mean_data_wait=mean([r.data_wait for r in records]),
            mean_tuning_time=mean([r.tuning_time for r in records]),
            mean_channel_switches=mean([r.channel_switches for r in records]),
        )


def simulate_workload(
    program: BroadcastProgram,
    *,
    rng: np.random.Generator,
    requests: int = 1000,
    faults: FaultInjector | FaultConfig | None = None,
    recovery: RecoveryPolicy | None = None,
) -> SimulationSummary:
    """Monte-Carlo workload: weighted targets, uniform tune-in slots.

    With ``faults`` given, every request runs the recovery-aware walk
    (:func:`~repro.client.protocol.recovering_walk`) against that
    shared channel model — all requests see the same air, as real
    receivers would — and the summary reports the loss/retry/abandon
    tallies. The fault stream is seeded independently of ``rng``, so a
    zero-probability model reproduces the lossless numbers exactly.
    """
    tree = program.schedule.tree
    targets = tree.data_nodes()
    weights = np.array([t.weight for t in targets], dtype=float)
    if weights.sum() == 0:
        probabilities = np.full(len(targets), 1.0 / len(targets))
    else:
        probabilities = weights / weights.sum()
    cycle = program.cycle_length
    if isinstance(faults, FaultConfig):
        faults = FaultInjector(faults)

    records: list[AccessRecord] = []
    target_indices = rng.choice(len(targets), size=requests, p=probabilities)
    tune_slots = rng.integers(1, cycle + 1, size=requests)
    for target_index, tune_slot in zip(target_indices, tune_slots):
        if faults is None:
            records.append(
                object_walk(program, targets[target_index], int(tune_slot))
            )
        else:
            records.append(
                recovering_walk(
                    program,
                    targets[target_index],
                    int(tune_slot),
                    faults=faults,
                    policy=recovery,
                )
            )
    return summarise_faulty_records(records)


def summarise_faulty_records(
    records: list[AccessRecord], weights: list[float] | None = None
) -> SimulationSummary:
    """Aggregate possibly-recovered records, excluding abandoned walks.

    Plain :class:`AccessRecord` batches pass straight through to
    :meth:`SimulationSummary.from_records`; recovered batches average
    the completed walks only and total the fault counters (abandoned
    walks still contribute their losses/retries/wasted probes — that
    energy was spent).
    """
    recovered = [
        r for r in records if isinstance(r, RecoveredAccessRecord)
    ]
    completed = [r for r in records if not getattr(r, "abandoned", False)]
    completed_weights = None
    if weights is not None:
        completed_weights = [
            w
            for r, w in zip(records, weights)
            if not getattr(r, "abandoned", False)
        ]
    summary = SimulationSummary.from_records(completed, completed_weights)
    summary.abandoned = sum(1 for r in recovered if r.abandoned)
    summary.lost_buckets = sum(r.lost_buckets for r in recovered)
    summary.corrupt_buckets = sum(r.corrupt_buckets for r in recovered)
    summary.retries = sum(r.retries for r in recovered)
    summary.wasted_probes = sum(r.wasted_probes for r in recovered)
    return summary


def exact_averages(program: BroadcastProgram) -> SimulationSummary:
    """Deterministic averages over every (tune slot, target) pair.

    Targets are weighted by ``W(D_i)``, tune slots uniformly — the exact
    expectation of the Monte-Carlo simulation, and therefore (by
    construction of the metrics module) equal to the analytic
    ``expected_access_time`` / ``expected_tuning_time``.
    """
    tree = program.schedule.tree
    cycle = program.cycle_length
    records: list[AccessRecord] = []
    weights: list[float] = []
    for target in tree.data_nodes():
        for tune_slot in range(1, cycle + 1):
            records.append(object_walk(program, target, tune_slot))
            weights.append(target.weight / cycle)
    return SimulationSummary.from_records(records, weights)
