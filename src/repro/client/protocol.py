"""The mobile client's access protocol (§1, §2.1), executed bucket by bucket.

A portable computer can listen to one channel at a time; between useful
buckets it dozes. To fetch a data item it:

1. tunes into the first channel at some slot and reads whatever bucket is
   airing — every channel-1 bucket carries a pointer to the first bucket
   of the next cycle;
2. dozes to the next cycle, reads the index root, and then follows child
   pointers — ``(channel, offset)`` pairs — down the index tree, dozing
   between reads and switching channels as the pointers dictate;
3. reads the target data bucket.

:func:`run_request` executes this walk against a compiled
:class:`~repro.broadcast.pointers.BroadcastProgram` and reports the access
time (slots elapsed), tuning time (buckets actually read — the energy
cost) and channel switches. The walk never consults the schedule
directly — only bucket pointers — so it genuinely validates the pointer
wiring.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..broadcast.pointers import BroadcastProgram
from ..exceptions import ScheduleError
from ..tree.node import DataNode, IndexNode, Node

__all__ = ["AccessRecord", "run_request"]


@dataclass(frozen=True)
class AccessRecord:
    """Measured outcome of one client request.

    Attributes
    ----------
    target:
        Label of the requested data item.
    tune_slot:
        Cycle-relative slot (1-based) at which the client tuned in.
    access_time:
        Slots from the start of the tune-in slot to the end of the
        target's slot.
    probe_wait:
        Slots from tune-in through reading the index root.
    data_wait:
        ``T(D_i)`` — the target's slot offset within its cycle.
    tuning_time:
        Buckets actively read (initial probe + root + index path + data).
    channel_switches:
        Channel changes performed after the initial tune-in.
    """

    target: str
    tune_slot: int
    access_time: int
    probe_wait: int
    data_wait: int
    tuning_time: int
    channel_switches: int


def run_request(
    program: BroadcastProgram, target: Node, tune_slot: int
) -> AccessRecord:
    """Execute one request for ``target`` tuning in at ``tune_slot``.

    ``tune_slot`` is cycle-relative (1..cycle_length) on channel 1.
    Raises :class:`ScheduleError` if the pointer walk derails (which a
    correctly compiled program cannot do).
    """
    if not isinstance(target, DataNode):
        raise ValueError("targets must be data nodes")
    cycle = program.cycle_length
    if not 1 <= tune_slot <= cycle:
        raise ValueError(f"tune_slot must be in 1..{cycle}")

    # Root path inside the index tree guides pointer choice at each hop.
    path = list(target.ancestors())
    path.reverse()
    path.append(target)

    tuning = 1  # the initial probe bucket on channel 1
    switches = 0
    current_channel = 1

    first_bucket = program.bucket_at(1, tune_slot)
    pointer = first_bucket.next_cycle_pointer
    if pointer is None:
        raise ScheduleError("channel-1 bucket lacks a next-cycle pointer")
    # Absolute time, measured in slots since the start of the tune-in
    # cycle. The next cycle begins at absolute slot cycle + 1.
    absolute = cycle + pointer.slot
    if pointer.channel != current_channel:
        switches += 1
        current_channel = pointer.channel

    bucket = program.bucket_at(pointer.channel, pointer.slot)
    tuning += 1
    if bucket.node is not path[0]:
        raise ScheduleError("next-cycle pointer did not land on the root")
    probe_wait = (cycle - tune_slot + 1) + pointer.slot

    for hop in path[1:]:
        assert isinstance(bucket.node, IndexNode)
        pointer = _pointer_for(bucket, hop)
        if pointer.channel != current_channel:
            switches += 1
            current_channel = pointer.channel
        absolute = cycle + pointer.slot
        bucket = program.bucket_at(pointer.channel, pointer.slot)
        tuning += 1
        if bucket.node is not hop:
            raise ScheduleError(
                f"pointer to {hop.label!r} landed on "
                f"{bucket.node.label if bucket.node else 'an empty bucket'!r}"
            )

    data_wait = absolute - cycle
    access_time = (cycle - tune_slot + 1) + data_wait
    return AccessRecord(
        target=target.label,
        tune_slot=tune_slot,
        access_time=access_time,
        probe_wait=probe_wait,
        data_wait=data_wait,
        tuning_time=tuning,
        channel_switches=switches,
    )


def _pointer_for(bucket, child: Node):
    """The child pointer leading to ``child``.

    Pointers are compiled in ``node.children`` order, so position — not
    the (possibly duplicated) label — identifies the right one, the same
    way a real bucket's pointer table is keyed by search-key range.
    """
    node = bucket.node
    assert isinstance(node, IndexNode)
    for position, candidate in enumerate(node.children):
        if candidate is child:
            return bucket.child_pointers[position]
    raise ScheduleError(
        f"index bucket {node.label!r} has no pointer to {child.label!r}"
    )
