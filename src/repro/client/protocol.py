"""The mobile client's access protocol (§1, §2.1), executed bucket by bucket.

A portable computer can listen to one channel at a time; between useful
buckets it dozes. To fetch a data item it:

1. tunes into the first channel at some slot and reads whatever bucket is
   airing — every channel-1 bucket carries a pointer to the first bucket
   of the next cycle;
2. dozes to the next cycle, reads the index root, and then follows child
   pointers — ``(channel, offset)`` pairs — down the index tree, dozing
   between reads and switching channels as the pointers dictate;
3. reads the target data bucket.

:func:`object_walk` executes this walk against a compiled
:class:`~repro.broadcast.pointers.BroadcastProgram` and reports the access
time (slots elapsed), tuning time (buckets actually read — the energy
cost) and channel switches. The walk never consults the schedule
directly — only bucket pointers — so it genuinely validates the pointer
wiring. :func:`recovering_walk` is the same walk hardened against the
:mod:`repro.faults` channel model. Most callers should go through the
unified :func:`repro.client.request` facade rather than calling either
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..broadcast.pointers import BroadcastProgram
from ..exceptions import ScheduleError
from ..faults import CORRUPT, OK, FaultConfig, FaultInjector
from ..obs.events import NO_WALK, ChannelHop, SlotRead, Tracer, WalkFinished
from ..tree.node import DataNode, IndexNode, Node

__all__ = [
    "AccessRecord",
    "RecoveryPolicy",
    "RecoveredAccessRecord",
    "object_walk",
    "recovering_walk",
]


@dataclass(frozen=True)
class AccessRecord:
    """Measured outcome of one client request.

    Attributes
    ----------
    target:
        Label of the requested data item.
    tune_slot:
        Cycle-relative slot (1-based) at which the client tuned in.
    access_time:
        Slots from the start of the tune-in slot to the end of the
        target's slot.
    probe_wait:
        Slots from tune-in through reading the index root.
    data_wait:
        ``T(D_i)`` — the target's slot offset within its cycle.
    tuning_time:
        Buckets actively read (initial probe + root + index path + data).
    channel_switches:
        Channel changes performed after the initial tune-in.
    """

    target: str
    tune_slot: int
    access_time: int
    probe_wait: int
    data_wait: int
    tuning_time: int
    channel_switches: int


def object_walk(
    program: BroadcastProgram,
    target: Node,
    tune_slot: int,
    *,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
) -> AccessRecord:
    """Execute one request for ``target`` tuning in at ``tune_slot``.

    ``tune_slot`` is cycle-relative (1..cycle_length) on channel 1.
    Raises :class:`ScheduleError` if the pointer walk derails (which a
    correctly compiled program cannot do).

    When ``tracer`` is enabled the walk narrates each read
    (:class:`~repro.obs.events.SlotRead`), re-tune
    (:class:`~repro.obs.events.ChannelHop`) and its completion
    (:class:`~repro.obs.events.WalkFinished`) in the same vocabulary —
    and the same absolute-slot frame, counted from the start of the
    tune-in cycle — as :class:`~repro.client.walk.PointerWalk`, so the
    object-level and frame-level paths produce diffable traces.
    ``walk_id`` stamps the events' ``walk`` correlation field.
    """
    if not isinstance(target, DataNode):
        raise ValueError("targets must be data nodes")
    cycle = program.cycle_length
    if not 1 <= tune_slot <= cycle:
        raise ValueError(f"tune_slot must be in 1..{cycle}")
    emit = tracer is not None and tracer.enabled
    wid = NO_WALK if walk_id is None else walk_id

    # Root path inside the index tree guides pointer choice at each hop.
    path = list(target.ancestors())
    path.reverse()
    path.append(target)

    tuning = 1  # the initial probe bucket on channel 1
    switches = 0
    current_channel = 1
    if emit:
        tracer.emit(
            SlotRead(
                key=target.label, channel=1, absolute_slot=tune_slot, walk=wid
            )
        )

    first_bucket = program.bucket_at(1, tune_slot)
    pointer = first_bucket.next_cycle_pointer
    if pointer is None:
        raise ScheduleError("channel-1 bucket lacks a next-cycle pointer")
    # Absolute time, measured in slots since the start of the tune-in
    # cycle. The next cycle begins at absolute slot cycle + 1.
    absolute = cycle + pointer.slot

    bucket = program.bucket_at(pointer.channel, pointer.slot)
    tuning += 1
    if emit:
        tracer.emit(
            SlotRead(
                key=target.label,
                channel=pointer.channel,
                absolute_slot=absolute,
                walk=wid,
            )
        )
        if pointer.channel != current_channel:
            tracer.emit(
                ChannelHop(
                    key=target.label,
                    from_channel=current_channel,
                    to_channel=pointer.channel,
                    absolute_slot=absolute,
                    walk=wid,
                )
            )
    if pointer.channel != current_channel:
        switches += 1
        current_channel = pointer.channel
    if bucket.node is not path[0]:
        raise ScheduleError("next-cycle pointer did not land on the root")
    probe_wait = (cycle - tune_slot + 1) + pointer.slot

    for hop in path[1:]:
        assert isinstance(bucket.node, IndexNode)
        pointer = _pointer_for(bucket, hop)
        absolute = cycle + pointer.slot
        bucket = program.bucket_at(pointer.channel, pointer.slot)
        tuning += 1
        if emit:
            tracer.emit(
                SlotRead(
                    key=target.label,
                    channel=pointer.channel,
                    absolute_slot=absolute,
                    walk=wid,
                )
            )
            if pointer.channel != current_channel:
                tracer.emit(
                    ChannelHop(
                        key=target.label,
                        from_channel=current_channel,
                        to_channel=pointer.channel,
                        absolute_slot=absolute,
                        walk=wid,
                    )
                )
        if pointer.channel != current_channel:
            switches += 1
            current_channel = pointer.channel
        if bucket.node is not hop:
            raise ScheduleError(
                f"pointer to {hop.label!r} landed on "
                f"{bucket.node.label if bucket.node else 'an empty bucket'!r}"
            )

    data_wait = absolute - cycle
    access_time = (cycle - tune_slot + 1) + data_wait
    if emit:
        tracer.emit(
            WalkFinished(
                key=target.label,
                tune_slot=tune_slot,
                access_time=access_time,
                tuning_time=tuning,
                channel_switches=switches,
                walk=wid,
            )
        )
    return AccessRecord(
        target=target.label,
        tune_slot=tune_slot,
        access_time=access_time,
        probe_wait=probe_wait,
        data_wait=data_wait,
        tuning_time=tuning,
        channel_switches=switches,
    )


@dataclass(frozen=True)
class RecoveryPolicy:
    """What a client does when a tuned-to bucket is lost or corrupt.

    Attributes
    ----------
    mode:
        ``"retry-parent"`` — re-tune to the last successfully read index
        node at its next airing and walk down from there (the client
        distrusts its cached pointer after channel trouble);
        ``"next-cycle"`` — keep the cached pointer and simply wait for
        the lost bucket's next airing, one cycle later (cheapest in
        tuning, a full cycle in access time per loss).
    max_cycles:
        Give-up bound: the walk abandons once it would have to read past
        this many cycles from tune-in. Must be at least 2 — a lossless
        walk needs two cycles (probe cycle + index cycle), so smaller
        values would abandon requests no loss ever touched.
    cutover:
        What a frame-level walk does when a delivered envelope is
        stamped with a *different* schedule version than the one it
        adopted (the station replanned mid-walk — see
        :mod:`repro.sched`). ``"restart-root"`` (default) re-probes
        channel 1 from the very next slot and descends the *new*
        version's index — accounted like a retry, never as a corrupt
        read. ``"abandon"`` gives the walk up instead (for clients that
        would rather fail fast than pay the restart).
    """

    mode: str = "retry-parent"
    max_cycles: int = 8
    cutover: str = "restart-root"

    def __post_init__(self) -> None:
        if self.mode not in ("retry-parent", "next-cycle"):
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; expected "
                "'retry-parent' or 'next-cycle'"
            )
        if self.max_cycles < 2:
            raise ValueError("max_cycles must be >= 2 (a lossless walk "
                             "spans two cycles)")
        if self.cutover not in ("restart-root", "abandon"):
            raise ValueError(
                f"unknown cutover outcome {self.cutover!r}; expected "
                "'restart-root' or 'abandon'"
            )


@dataclass(frozen=True)
class RecoveredAccessRecord(AccessRecord):
    """An :class:`AccessRecord` measured over an unreliable channel.

    The inherited fields keep their meaning (and are bit-identical to
    :func:`object_walk` when nothing is lost). The extras account for
    the channel's damage:

    ``lost_buckets`` / ``corrupt_buckets`` — reads that aired but never
    became usable (dropped vs checksum-failed); ``retries`` — recovery
    re-tunes performed; ``wasted_probes`` — bucket reads beyond the
    lossless walk's (energy burned on the fault, failed reads and
    re-reads alike); ``cycles_spent`` — broadcast cycles the walk
    spanned; ``abandoned`` — the give-up bound was hit before the data
    bucket was read (such records carry the time spent *until* giving
    up and must not enter access-time means).
    """

    lost_buckets: int = 0
    corrupt_buckets: int = 0
    retries: int = 0
    wasted_probes: int = 0
    cycles_spent: int = 1
    abandoned: bool = False


def recovering_walk(
    program: BroadcastProgram,
    target: Node,
    tune_slot: int,
    *,
    faults: FaultInjector | FaultConfig | None = None,
    policy: RecoveryPolicy | None = None,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
) -> RecoveredAccessRecord:
    """Execute one request over an unreliable channel, recovering on loss.

    The walk is :func:`object_walk` hardened against the
    :mod:`repro.faults` channel model: every tuned-to bucket may be lost
    or corrupt (a corrupt frame is detected by the wire checksum, so the
    client treats it as lost); the client then recovers per ``policy``
    and the record counts what the damage cost. The broadcast repeats
    cyclically, so every bucket airs again one cycle later.

    With ``faults`` absent (or a zero-probability config) the walk, and
    every inherited field of the returned record, is **bit-identical**
    to :func:`object_walk` — the differential invariant the test suite
    locks.

    ``tracer``/``walk_id`` narrate the walk exactly as in
    :func:`object_walk`, with every failed read carrying its
    ``outcome`` (``"lost"``/``"corrupt"``) so
    :mod:`repro.obs.attrib` can charge recovery time to the fault.
    """
    if not isinstance(target, DataNode):
        raise ValueError("targets must be data nodes")
    cycle = program.cycle_length
    if not 1 <= tune_slot <= cycle:
        raise ValueError(f"tune_slot must be in 1..{cycle}")
    if policy is None:
        policy = RecoveryPolicy()
    if isinstance(faults, FaultConfig):
        faults = FaultInjector(faults)
    emit = tracer is not None and tracer.enabled
    wid = NO_WALK if walk_id is None else walk_id

    path = list(target.ancestors())
    path.reverse()
    path.append(target)

    deadline = policy.max_cycles * cycle

    def fate_of(channel: int, absolute: int) -> str:
        return faults.outcome(channel, absolute) if faults is not None else OK

    tuning = 0
    switches = 0
    current_channel = 1
    lost = corrupt = retries = 0
    probe_wait = 0

    def record(final_absolute: int, *, abandoned: bool) -> RecoveredAccessRecord:
        if emit:
            tracer.emit(
                WalkFinished(
                    key=target.label,
                    tune_slot=tune_slot,
                    access_time=final_absolute - tune_slot + 1,
                    tuning_time=tuning,
                    channel_switches=switches,
                    retries=retries,
                    abandoned=abandoned,
                    walk=wid,
                )
            )
        return RecoveredAccessRecord(
            target=target.label,
            tune_slot=tune_slot,
            access_time=final_absolute - tune_slot + 1,
            probe_wait=probe_wait,
            data_wait=final_absolute - cycle,
            tuning_time=tuning,
            channel_switches=switches,
            lost_buckets=lost,
            corrupt_buckets=corrupt,
            retries=retries,
            wasted_probes=tuning - (len(path) + 1) if not abandoned else tuning,
            cycles_spent=(final_absolute - 1) // cycle + 1,
            abandoned=abandoned,
        )

    # -- phase 1: the initial probe on channel 1 ---------------------------
    # Every channel-1 bucket carries a next-cycle pointer, so on a lost
    # probe the client just keeps listening: the very next slot serves.
    absolute = tune_slot
    while True:
        if absolute > deadline:
            return record(deadline, abandoned=True)
        fate = fate_of(1, absolute)
        tuning += 1
        if emit:
            tracer.emit(
                SlotRead(
                    key=target.label,
                    channel=1,
                    absolute_slot=absolute,
                    outcome=fate,
                    walk=wid,
                )
            )
        if fate == OK:
            break
        retries += 1
        if fate == CORRUPT:
            corrupt += 1
        else:
            lost += 1
        absolute += 1
    probe_slot = (absolute - 1) % cycle + 1
    probe_bucket = program.bucket_at(1, probe_slot)
    pointer = probe_bucket.next_cycle_pointer
    if pointer is None:
        raise ScheduleError("channel-1 bucket lacks a next-cycle pointer")
    # The pointer names the root of the cycle after the probe's cycle.
    probe_cycle = (absolute - 1) // cycle
    next_channel, next_slot = pointer.channel, pointer.slot
    next_absolute = (probe_cycle + 1) * cycle + pointer.slot

    # -- phase 2: descend the index path, recovering as configured --------
    # ``good`` stacks the successfully read index hops (depth, channel,
    # cycle-relative slot) — the resume points of "retry-parent".
    good: list[tuple[int, int, int]] = []
    depth = 0
    while True:
        if next_absolute > deadline:
            return record(deadline, abandoned=True)
        hopped = next_channel != current_channel
        if hopped:
            switches += 1
        fate = fate_of(next_channel, next_absolute)
        tuning += 1
        if emit:
            tracer.emit(
                SlotRead(
                    key=target.label,
                    channel=next_channel,
                    absolute_slot=next_absolute,
                    outcome=fate,
                    walk=wid,
                )
            )
            if hopped:
                tracer.emit(
                    ChannelHop(
                        key=target.label,
                        from_channel=current_channel,
                        to_channel=next_channel,
                        absolute_slot=next_absolute,
                        walk=wid,
                    )
                )
        if hopped:
            current_channel = next_channel
        if fate != OK:
            retries += 1
            if fate == CORRUPT:
                corrupt += 1
            else:
                lost += 1
            if policy.mode == "next-cycle" or not good:
                # Same bucket, one cycle later (the root, having no
                # parent, always recovers this way).
                next_absolute += cycle
            else:
                depth, next_channel, next_slot = good.pop()
                next_absolute = _next_airing(next_slot, next_absolute, cycle)
            continue

        bucket = program.bucket_at(next_channel, next_slot)
        node = bucket.node
        if node is not path[depth]:
            raise ScheduleError(
                f"pointer to {path[depth].label!r} landed on "
                f"{node.label if node else 'an empty bucket'!r}"
            )
        if depth == 0 and probe_wait == 0:
            probe_wait = next_absolute - tune_slot + 1
        if depth == len(path) - 1:
            return record(next_absolute, abandoned=False)
        assert isinstance(node, IndexNode)
        good.append((depth, next_channel, next_slot))
        pointer = _pointer_for(bucket, path[depth + 1])
        depth += 1
        next_channel, next_slot = pointer.channel, pointer.slot
        next_absolute = _next_airing(pointer.slot, next_absolute, cycle)


def _next_airing(slot: int, after: int, cycle: int) -> int:
    """First absolute time strictly after ``after`` when ``slot`` airs.

    ``slot`` is cycle-relative (1-based); the broadcast repeats, so the
    bucket airs at ``slot + j·cycle`` for every ``j ≥ 0``.
    """
    airing = after + (slot - after) % cycle
    return airing if airing > after else airing + cycle


def _pointer_for(bucket, child: Node):
    """The child pointer leading to ``child``.

    Pointers are compiled in ``node.children`` order, so position — not
    the (possibly duplicated) label — identifies the right one, the same
    way a real bucket's pointer table is keyed by search-key range.
    """
    node = bucket.node
    assert isinstance(node, IndexNode)
    for position, candidate in enumerate(node.children):
        if candidate is child:
            return bucket.child_pointers[position]
    raise ScheduleError(
        f"index bucket {node.label!r} has no pointer to {child.label!r}"
    )
