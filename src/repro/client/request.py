"""One request facade over every walk engine.

The client grew three parallel entry points — the object-graph walk,
its loss-recovering variant, and the frame-level wire walk — and the
batch engine would have been a fourth. Mirroring :mod:`repro.planners`,
this module replaces the spelling-per-engine API with a **registry**:

* :func:`request` — the one call: ``request(program, target, tune_slot,
  engine="object")``;
* :class:`WalkEngine` — the protocol an engine implements;
* :func:`register_engine` / :func:`engines` — how strategies are named
  and discovered, exactly like planners.

Built-in engines:

``"object"``
    :func:`~repro.client.protocol.object_walk`, switching to
    :func:`~repro.client.protocol.recovering_walk` when ``faults=`` or
    ``recovery=`` is given.
``"wire"``
    :func:`~repro.io.wire_client.wire_walk` over the program encoded to
    frames (cached on the program); lossless air only.
``"batch"``
    :func:`repro.engine.run_batch` over the dense compilation (cached
    on the program) — the vectorised engine, here running a batch of
    one so a single request and a 10⁶-walk sweep share one code path.

Every engine measures the *same* walk: at loss 0 the returned access,
tuning, probe and data times are bit-identical across all three, the
invariant the differential tests lock.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..broadcast.pointers import BroadcastProgram
from ..exceptions import ReproError
from ..faults import FaultConfig, FaultInjector
from ..obs.events import Tracer
from ..tree.node import DataNode, Node
from .protocol import (
    AccessRecord,
    RecoveryPolicy,
    object_walk,
    recovering_walk,
)

__all__ = [
    "EngineNotFound",
    "WalkEngine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engines",
    "request",
    "invalidate_request_caches",
]

#: Per-program memoisation slots the engines fill lazily. All of them
#: are derived purely from the program instance, so they stay valid for
#: its lifetime — *unless* a schedule-version cutover retires the
#: program, at which point holding them only pins dead frame grids and
#: dense compilations in memory (see :func:`invalidate_request_caches`).
_REQUEST_CACHE_KEYS = (
    "_request_leaves",
    "_request_frames",
    "_request_dense",
    "_request_data_ids",
)


def invalidate_request_caches(program: BroadcastProgram) -> int:
    """Drop every engine cache memoised on ``program``.

    Called by the schedule-version layer (:mod:`repro.sched`) when a
    cutover retires a program: its cached wire frames and dense
    compilation describe an allocation that is no longer on air, and a
    consumer that kept the program object must not be served stale
    compiled state if the instance is ever reused for a new version.
    Returns how many cache slots were dropped.
    """
    removed = 0
    for key in _REQUEST_CACHE_KEYS:
        if program.__dict__.pop(key, None) is not None:
            removed += 1
    return removed


class EngineNotFound(ReproError, KeyError):
    """No walk engine is registered under the requested name."""

    def __init__(self, name: str, available: list[str]) -> None:
        super().__init__(
            f"no walk engine registered as {name!r}; available: "
            f"{', '.join(available)}"
        )
        self.name = name


@runtime_checkable
class WalkEngine(Protocol):
    """The walk-engine protocol.

    An engine is any callable with this signature; everything after the
    (program, target, tune slot) triple is keyword-only. An engine that
    does not support a given option (the wire engine cannot inject
    faults, the batch engine cannot narrate a tracer) must raise
    ``ValueError`` rather than silently ignore it.
    """

    def __call__(
        self,
        program: BroadcastProgram,
        target: DataNode,
        tune_slot: int,
        *,
        recovery: RecoveryPolicy | None = None,
        faults: FaultInjector | FaultConfig | None = None,
        tracer: Tracer | None = None,
        walk_id: int | None = None,
    ) -> AccessRecord: ...

    # Engines may additionally accept ``trace=(trace_id, span_id)`` —
    # the causal context of the publish serving the walk (see
    # :mod:`repro.obs.spans`); :func:`request` forwards it only when
    # set, so engines that predate it keep working.


_REGISTRY: dict[str, WalkEngine] = {}


def register_engine(name: str, engine: WalkEngine | None = None):
    """Register ``engine`` under ``name`` (usable as a decorator).

    Re-registering a name overwrites it, the same shadowing rule as
    :func:`repro.planners.register`.
    """
    if engine is None:

        def decorator(func: WalkEngine) -> WalkEngine:
            _REGISTRY[name] = func
            return func

        return decorator
    _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove a registered engine (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> WalkEngine:
    """Resolve a registry name to its engine."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EngineNotFound(name, engines()) from None


def engines() -> list[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def request(
    program: BroadcastProgram,
    target: Node | str,
    tune_slot: int,
    *,
    engine: str = "object",
    recovery: RecoveryPolicy | None = None,
    faults: FaultInjector | FaultConfig | None = None,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
    trace: tuple[int, int] | None = None,
) -> AccessRecord:
    """Execute one client request through the named engine.

    ``target`` is a data node or its label. ``faults``/``recovery``
    switch the walk to the loss-recovering protocol (engines that
    cannot model faults raise ``ValueError``); ``tracer``/``walk_id``
    narrate the walk where the engine supports narration. ``trace`` is
    an optional ``(trace_id, span_id)`` causal context the walk's
    segment spans parent onto (wire engine only) — forwarded to the
    engine only when set, so custom engines without the parameter keep
    working.
    """
    node = _resolve_target(program, target)
    kwargs: dict = dict(
        recovery=recovery, faults=faults, tracer=tracer, walk_id=walk_id
    )
    if trace is not None:
        kwargs["trace"] = trace
    return get_engine(engine)(program, node, tune_slot, **kwargs)


def _resolve_target(program: BroadcastProgram, target: Node | str) -> DataNode:
    """A data node for ``target``; labels resolve through a cached map."""
    if isinstance(target, Node):
        if not isinstance(target, DataNode):
            raise ValueError("targets must be data nodes")
        return target
    leaves = program.__dict__.get("_request_leaves")
    if leaves is None:
        leaves = {
            leaf.label: leaf for leaf in program.schedule.tree.data_nodes()
        }
        program.__dict__["_request_leaves"] = leaves
    try:
        return leaves[target]
    except KeyError:
        raise ValueError(
            f"no data item labelled {target!r} in the program's catalog"
        ) from None


# ---------------------------------------------------------------------------
# Built-in engines
# ---------------------------------------------------------------------------

@register_engine("object")
def object_engine(
    program: BroadcastProgram,
    target: DataNode,
    tune_slot: int,
    *,
    recovery: RecoveryPolicy | None = None,
    faults: FaultInjector | FaultConfig | None = None,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
) -> AccessRecord:
    """The object-graph walk; recovery-aware when faults/recovery given."""
    if faults is not None or recovery is not None:
        return recovering_walk(
            program, target, tune_slot,
            faults=faults, policy=recovery, tracer=tracer, walk_id=walk_id,
        )
    return object_walk(
        program, target, tune_slot, tracer=tracer, walk_id=walk_id
    )


@register_engine("wire")
def wire_engine(
    program: BroadcastProgram,
    target: DataNode,
    tune_slot: int,
    *,
    recovery: RecoveryPolicy | None = None,
    faults: FaultInjector | FaultConfig | None = None,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
    trace: tuple[int, int] | None = None,
):
    """The frame-level walk over the program's encoded cycle.

    The encoding is cached on the program instance — a request facade
    that re-serialised the whole cycle per call would make the wire
    engine unusable for sweeps. Faults belong to the transport at this
    level (see :mod:`repro.net`), not the walk, so they are rejected.
    """
    if faults is not None or recovery is not None:
        raise ValueError(
            "the wire engine replays lossless frames; inject faults at "
            "the transport (repro.net) or use engine='object'/'batch'"
        )
    # Imported lazily: repro.io builds on repro.client.walk, and eager
    # imports here would close an import cycle through the package inits.
    from ..io.wire import encode_program
    from ..io.wire_client import wire_walk

    frames = program.__dict__.get("_request_frames")
    if frames is None:
        frames = encode_program(program)
        program.__dict__["_request_frames"] = frames
    key = str(target.key) if target.key is not None else target.label
    return wire_walk(
        frames, key, tune_slot,
        tracer=tracer, walk_id=walk_id, trace_context=trace,
    )


@register_engine("batch")
def batch_engine(
    program: BroadcastProgram,
    target: DataNode,
    tune_slot: int,
    *,
    recovery: RecoveryPolicy | None = None,
    faults: FaultInjector | FaultConfig | None = None,
    tracer: Tracer | None = None,
    walk_id: int | None = None,
) -> AccessRecord:
    """The vectorised engine, run as a batch of one.

    The dense compilation (and the node → data-id map) is cached on the
    program, so a loop of single requests pays the compile once — and a
    caller that wants real throughput should hand the whole workload to
    :func:`repro.engine.run_batch` directly.
    """
    if tracer is not None:
        raise ValueError(
            "the batch engine is columnar and does not narrate per-walk "
            "traces; use engine='object' or engine='wire' with tracer="
        )
    del walk_id  # correlates trace events, which batch does not emit
    from ..engine import compile_dense, run_batch

    dense = program.__dict__.get("_request_dense")
    ids = program.__dict__.get("_request_data_ids")
    if dense is None or ids is None:
        dense = compile_dense(program)
        ids = {
            id(leaf): index
            for index, leaf in enumerate(program.schedule.tree.data_nodes())
        }
        program.__dict__["_request_dense"] = dense
        program.__dict__["_request_data_ids"] = ids
    records = run_batch(
        dense, [ids[id(target)]], [tune_slot],
        faults=faults, recovery=recovery,
    )
    return records.to_records()[0]
