"""The sans-io pointer-walk state machine shared by every receiver.

Three different clients walk the same broadcast: the in-process frame
client (:func:`repro.io.wire_client.wire_walk`), the asyncio
tuner of :mod:`repro.net` listening over real sockets, and — at the
object level — :func:`repro.client.protocol.object_walk`. The first two
see nothing but decoded frames, so their walk logic (probe channel 1,
follow the next-cycle pointer to the root, route down the index by key
comparison, recover from lost or corrupt airings per
:class:`~repro.client.protocol.RecoveryPolicy`) is *identical* — and
before this module existed it was duplicated, with the async copy about
to become a third.

:class:`PointerWalk` is that logic with the I/O factored out, in the
sans-io style network protocol stacks use: the machine never reads a
socket or an array. It tells its driver what to tune to next
(:meth:`next_listen` → a :class:`Listen` naming a channel and an
absolute slot), the driver obtains that airing however it likes —
indexing a frame grid, awaiting a datagram — and feeds back either the
decoded bucket (:meth:`deliver`) or the fact of its loss
(:meth:`on_loss`). When :meth:`next_listen` returns ``None`` the walk is
over and :attr:`result` holds the measured :class:`WalkResult`.

The slot accounting mirrors
:func:`~repro.client.protocol.recovering_walk` *exactly*: on a
lossless channel every inherited number (access time, probe wait, data
wait, tuning time, channel switches) is bit-identical to the object-level
walk on the same compiled program — the invariant that lets the
:mod:`repro.net` loopback parity gate compare a live socket fleet
against the in-process simulator and demand equality, not closeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError
from ..io.wire import DecodedBucket, DecodedPointer, WireFormatError
from ..obs.events import (
    NO_WALK,
    NULL_TRACER,
    ChannelHop,
    CutoverDetected,
    SlotRead,
    Tracer,
    WalkFinished,
)
from ..obs.spans import NO_TRACE, TraceContext, span_tracer_of
from .protocol import RecoveryPolicy, _next_airing

__all__ = ["Listen", "WalkResult", "LookupFailed", "PointerWalk"]


class LookupFailed(ReproError):
    """The key routed to a data bucket that does not carry it."""


@dataclass(frozen=True)
class Listen:
    """One tuning instruction: wake up and read this airing.

    ``absolute_slot`` counts slots from the start of the cycle the walk
    tuned into (1-based, so the tune-in slot itself is ``tune_slot``);
    the broadcast is cyclic, so the airing's content is the bucket at
    cycle-relative slot ``(absolute_slot - 1) % cycle + 1``.
    """

    channel: int
    absolute_slot: int


@dataclass(frozen=True)
class WalkResult:
    """Measured outcome of one key-routed walk.

    Field meanings match :class:`~repro.client.protocol.AccessRecord` /
    :class:`~repro.client.protocol.RecoveredAccessRecord` (``key``
    replaces ``target``: a frame-level client knows search keys, not
    node objects). ``payload`` is the data bucket's delivered bytes —
    empty when the walk was abandoned.
    """

    key: str
    tune_slot: int
    access_time: int
    probe_wait: int
    data_wait: int
    tuning_time: int
    channel_switches: int
    lost_buckets: int = 0
    corrupt_buckets: int = 0
    retries: int = 0
    wasted_probes: int = 0
    cycles_spent: int = 1
    abandoned: bool = False
    #: Mid-walk schedule cutovers survived (each also counts a retry).
    cutovers: int = 0
    payload: bytes = b""


_PROBE = "probe"
_DESCEND = "descend"
_DONE = "done"


class PointerWalk:
    """Sans-io protocol walk: probe, descend by key, recover on loss.

    Parameters
    ----------
    key:
        Search key of the requested item (an alphabetic index tree is a
        search tree, so pointer-table ``key_hi`` separators route it).
    tune_slot:
        Cycle-relative slot (1..cycle_length) at which the client tunes
        into channel 1.
    cycle_length:
        Slots per broadcast cycle (from the station's welcome metadata
        or the frame grid's row length).
    policy:
        Loss-recovery behaviour; default
        :class:`~repro.client.protocol.RecoveryPolicy` (retry-parent,
        give up after 8 cycles).
    tracer:
        Optional :class:`~repro.obs.events.Tracer`; when enabled the
        walk narrates every read (:class:`~repro.obs.events.SlotRead`),
        every re-tune (:class:`~repro.obs.events.ChannelHop`) and its
        completion (:class:`~repro.obs.events.WalkFinished`). The
        default no-op tracer costs one boolean check per read and never
        alters the walk's measured numbers.
    walk_id:
        Optional correlation id stamped into every emitted event's
        ``walk`` field, so a concurrent fleet's interleaved trace can be
        reassembled per walk (:mod:`repro.obs.attrib`). ``None`` leaves
        the events at :data:`~repro.obs.events.NO_WALK`.

    Drive it as::

        walk = PointerWalk(key, tune_slot, cycle)
        while (listen := walk.next_listen()) is not None:
            bucket = ...read the airing listen names...
            walk.deliver(bucket)        # or walk.on_loss(...)
        record = walk.result
    """

    def __init__(
        self,
        key: str,
        tune_slot: int,
        cycle_length: int,
        *,
        policy: RecoveryPolicy | None = None,
        tracer: Tracer | None = None,
        walk_id: int | None = None,
    ) -> None:
        if cycle_length < 1:
            raise ValueError("cycle_length must be >= 1")
        if not 1 <= tune_slot <= cycle_length:
            raise ValueError(f"tune_slot must be in 1..{cycle_length}")
        self.key = key
        self.tune_slot = tune_slot
        self.cycle = cycle_length
        self.policy = policy if policy is not None else RecoveryPolicy()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.walk_id = NO_WALK if walk_id is None else walk_id
        self._deadline = self.policy.max_cycles * cycle_length

        self._state = _PROBE
        self._listen: Listen | None = Listen(1, tune_slot)
        self._current_channel = 1
        self._tuning = 0
        self._switches = 0
        self._lost = 0
        self._corrupt = 0
        self._retries = 0
        self._cutovers = 0
        self._probe_wait = 0
        self._depth = 0
        #: Schedule version this walk adopted from the air (``None``
        #: until the first versioned envelope arrives; drivers on
        #: unversioned transports never touch it).
        self.version: int | None = None
        # Causal-span state: only walks driven through a span-capable
        # tracer (and an enabled sink) pay anything here — everyone
        # else carries a single None.
        self._spans = (
            span_tracer_of(self._tracer) if self._tracer.enabled else None
        )
        self._wire_trace: TraceContext = NO_TRACE
        self._segment_trace: TraceContext = NO_TRACE
        self._segment_start = tune_slot
        self._segment_index = 0
        # Successfully read index hops (depth, channel, cycle-relative
        # slot) — the resume points of the "retry-parent" policy.
        self._good: list[tuple[int, int, int]] = []
        self._result: WalkResult | None = None

    # -- driver-facing surface ---------------------------------------------
    @property
    def done(self) -> bool:
        return self._state == _DONE

    @property
    def result(self) -> WalkResult:
        if self._result is None:
            raise ReproError("walk is not finished; keep driving next_listen()")
        return self._result

    def next_listen(self) -> Listen | None:
        """The airing to read next, or ``None`` once the walk finished."""
        return self._listen

    def deliver(self, bucket: DecodedBucket) -> None:
        """Feed the successfully decoded bucket of the pending listen."""
        listen = self._require_listen()
        if self._spans is not None:
            self._adopt_segment_trace()
        self._register_read(listen, "ok")
        if self._state == _PROBE:
            self._probe_delivered(listen, bucket)
        else:
            self._descend_delivered(listen, bucket)

    def on_loss(self, *, corrupt: bool = False) -> None:
        """The pending listen's airing was lost (or failed its checksum).

        The client was awake for the slot either way, so the read still
        costs tuning time; recovery then follows the policy — a lost
        channel-1 probe just keeps listening (the very next slot also
        carries a next-cycle pointer), a lost index/data bucket either
        waits for its next airing one cycle later (``next-cycle``, and
        always for the root, which has no parent to retry) or re-tunes
        to the deepest successfully read index node (``retry-parent``).
        """
        listen = self._require_listen()
        if self._spans is not None:
            self._adopt_segment_trace()
        self._register_read(listen, "corrupt" if corrupt else "lost")
        self._retries += 1
        if corrupt:
            self._corrupt += 1
        else:
            self._lost += 1
        if self._state == _PROBE:
            self._schedule(1, listen.absolute_slot + 1)
        elif self.policy.mode == "next-cycle" or not self._good:
            self._schedule(listen.channel, listen.absolute_slot + self.cycle)
        else:
            self._depth, channel, rel_slot = self._good.pop()
            self._schedule(
                channel, _next_airing(rel_slot, listen.absolute_slot, self.cycle)
            )

    def observe_trace(self, trace_id: int, span_id: int) -> None:
        """Feed the pending envelope's wire trace context, if any.

        Call *before* :meth:`observe_version` with the
        :class:`~repro.io.wire.AirFrame`'s ``trace_id``/``span_id``
        (zeros — an untraced transport — are free and ignored). The
        context names the publish span that put the current schedule
        on the air; each walk *segment* (the stretch between cutovers)
        parents its span onto the context it ran under, which is what
        links a station cutover to every walk it restarted.
        """
        if self._spans is None:
            return
        # Zeros overwrite too: an untraced frame means the *current*
        # schedule has no publish span, and a later segment must not
        # inherit a stale context from a retired one.
        self._wire_trace = TraceContext(trace_id, span_id)

    def observe_version(self, version: int) -> bool:
        """Feed the pending envelope's schedule-version stamp.

        Call *before* :meth:`deliver`/:meth:`on_loss` with the
        :class:`~repro.io.wire.AirFrame`'s ``schedule_version``. A zero
        (unversioned transport) is ignored; the first positive version
        is adopted as the walk's own. A *different* positive version is
        a mid-walk cutover: the walk consumes the pending read through
        :meth:`on_cutover` and returns ``True`` — the driver must then
        skip its normal deliver/loss handling for this airing and go
        back to :meth:`next_listen`.
        """
        if version <= 0:
            return False
        if self.version is None or version == self.version:
            self.version = version
            return False
        self.on_cutover(version)
        return True

    def on_cutover(self, new_version: int | None = None) -> None:
        """The pending airing was stamped with a new schedule version.

        The station replanned and the cutover's cycle boundary passed
        between this walk's reads: every pointer it holds (the
        ``_good`` resume stack included) belongs to a retired plan.
        Per ``policy.cutover`` the walk either restarts from the root —
        re-probe channel 1 at the very next slot and descend the new
        version's index — or abandons. Either way the read that
        revealed the cutover is registered (the client was awake for
        it, so it costs tuning time and keeps frame accounting exact)
        and counted like a retry, never as a corrupt bucket.
        """
        listen = self._require_listen()
        self._register_read(listen, "cutover")
        self._retries += 1
        self._cutovers += 1
        previous = self.version if self.version is not None else 0
        if new_version is not None:
            self.version = new_version
        if self._tracer.enabled:
            self._tracer.emit(
                CutoverDetected(
                    key=self.key,
                    from_version=previous,
                    to_version=self.version if self.version is not None else 0,
                    absolute_slot=listen.absolute_slot,
                    walk=self.walk_id,
                )
            )
        if self.policy.cutover == "abandon":
            self._finish(listen.absolute_slot, abandoned=True)
            return
        if self._spans is not None:
            # The revealing read belongs to the segment it ended; the
            # next segment runs under — and parents onto — the new
            # schedule's publish span, which this frame just carried.
            self._close_segment(listen.absolute_slot)
            self._segment_start = listen.absolute_slot + 1
            self._segment_index += 1
            self._segment_trace = self._wire_trace
        self._state = _PROBE
        self._depth = 0
        self._good.clear()
        self._schedule(1, listen.absolute_slot + 1)

    # -- internals ----------------------------------------------------------
    def _adopt_segment_trace(self) -> None:
        """Bind the current segment to the first wire context it reads."""
        if not self._segment_trace.present and self._wire_trace.present:
            self._segment_trace = self._wire_trace

    def _close_segment(self, end_slot: int) -> None:
        """Emit the span of the segment ending at ``end_slot``, if traced.

        Segments tile the walk exactly — ``[tune_slot .. cutover₁]``,
        ``[cutover₁+1 .. cutover₂]``, …, ``[cutoverₖ+1 .. final]`` —
        so their inclusive durations sum to the walk's access time,
        the invariant :func:`repro.obs.spans.reconcile_with_attrib`
        tests against :mod:`repro.obs.attrib`. A segment that ran
        under an untraced schedule (the bootstrap program) still
        emits, rooted in its own fresh trace, so the tiling holds.
        """
        if self._spans is None:
            return
        self._spans.finish(
            name="walk.restart" if self._segment_index else "walk.run",
            trace_id=self._segment_trace.trace_id,
            parent_id=self._segment_trace.span_id,
            start_slot=self._segment_start,
            end_slot=end_slot,
            component="walk",
            attrs=(
                ("walk", self.walk_id),
                ("key", self.key),
                ("segment", self._segment_index),
            ),
        )

    def _require_listen(self) -> Listen:
        if self._listen is None:
            raise ReproError("walk already finished; nothing is listening")
        return self._listen

    def _register_read(self, listen: Listen, outcome: str) -> None:
        self._tuning += 1
        hopped = listen.channel != self._current_channel
        if hopped:
            self._switches += 1
        if self._tracer.enabled:
            self._tracer.emit(
                SlotRead(
                    key=self.key,
                    channel=listen.channel,
                    absolute_slot=listen.absolute_slot,
                    outcome=outcome,
                    walk=self.walk_id,
                )
            )
            if hopped:
                self._tracer.emit(
                    ChannelHop(
                        key=self.key,
                        from_channel=self._current_channel,
                        to_channel=listen.channel,
                        absolute_slot=listen.absolute_slot,
                        walk=self.walk_id,
                    )
                )
        if hopped:
            self._current_channel = listen.channel

    def _schedule(self, channel: int, absolute: int) -> None:
        """Queue the next read, abandoning if it lies past the deadline."""
        if absolute > self._deadline:
            self._finish(self._deadline, abandoned=True)
        else:
            self._listen = Listen(channel, absolute)

    def _probe_delivered(self, listen: Listen, bucket: DecodedBucket) -> None:
        if bucket.next_cycle_offset <= 0:
            raise WireFormatError("channel-1 frame lacks a next-cycle pointer")
        # The offset names the root airing of the cycle after the
        # probe's; the root always airs on channel 1 (§3.1 rule).
        self._state = _DESCEND
        self._depth = 0
        self._schedule(1, listen.absolute_slot + bucket.next_cycle_offset)

    def _descend_delivered(self, listen: Listen, bucket: DecodedBucket) -> None:
        if bucket.kind == "empty":
            if self._depth == 0:
                raise WireFormatError(
                    "next-cycle pointer landed off the index root"
                )
            raise WireFormatError("pointer landed on an empty bucket")
        if self._depth == 0:
            if bucket.kind != "index":
                raise WireFormatError(
                    "next-cycle pointer landed off the index root"
                )
            if self._probe_wait == 0:
                self._probe_wait = listen.absolute_slot - self.tune_slot + 1
        if bucket.kind == "data":
            if bucket.label != self.key and not bucket.label.startswith(
                self.key
            ):
                raise LookupFailed(
                    f"lookup for {self.key!r} ended at {bucket.label!r}"
                )
            self._finish(
                listen.absolute_slot, abandoned=False, payload=bucket.payload
            )
            return
        pointer = self._route(bucket)
        if pointer.offset <= 0:
            raise WireFormatError(
                f"non-positive pointer offset {pointer.offset} in index "
                f"bucket {bucket.label!r}"
            )
        self._good.append(
            (self._depth, listen.channel, _relative(listen.absolute_slot, self.cycle))
        )
        self._depth += 1
        self._schedule(pointer.channel, listen.absolute_slot + pointer.offset)

    def _route(self, bucket: DecodedBucket) -> DecodedPointer:
        """Pick the child pointer whose key range covers :attr:`key`.

        ``key_hi`` separators are the max key of each child's subtree;
        the first pointer with ``key <= key_hi`` covers the key. Falls
        off the end to the last pointer (keys above the maximum cannot
        exist, but a search must land somewhere to discover that).
        """
        for pointer in bucket.pointers:
            if self.key <= pointer.key_hi:
                return pointer
        if not bucket.pointers:
            raise WireFormatError(
                f"index bucket {bucket.label!r} has no pointers"
            )
        return bucket.pointers[-1]

    def _finish(
        self, final_absolute: int, *, abandoned: bool, payload: bytes = b""
    ) -> None:
        # ``wasted_probes``: reads beyond the lossless walk's — probe +
        # one read per index level + the data read. An abandoned walk
        # wasted everything it read.
        clean_reads = self._depth + 2
        self._result = WalkResult(
            key=self.key,
            tune_slot=self.tune_slot,
            access_time=final_absolute - self.tune_slot + 1,
            probe_wait=self._probe_wait,
            data_wait=final_absolute - self.cycle,
            tuning_time=self._tuning,
            channel_switches=self._switches,
            lost_buckets=self._lost,
            corrupt_buckets=self._corrupt,
            retries=self._retries,
            wasted_probes=(
                self._tuning if abandoned else self._tuning - clean_reads
            ),
            cycles_spent=(final_absolute - 1) // self.cycle + 1,
            abandoned=abandoned,
            cutovers=self._cutovers,
            payload=payload,
        )
        self._state = _DONE
        self._listen = None
        if self._spans is not None:
            self._close_segment(final_absolute)
        if self._tracer.enabled:
            self._tracer.emit(
                WalkFinished(
                    key=self.key,
                    tune_slot=self.tune_slot,
                    access_time=self._result.access_time,
                    tuning_time=self._result.tuning_time,
                    channel_switches=self._result.channel_switches,
                    retries=self._result.retries,
                    abandoned=abandoned,
                    walk=self.walk_id,
                )
            )


def _relative(absolute: int, cycle: int) -> int:
    """Cycle-relative slot (1-based) of 1-based absolute slot."""
    return (absolute - 1) % cycle + 1
