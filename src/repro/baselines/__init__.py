"""Comparison baselines: the [SV96] level-per-channel layout (§1.1), the
[Ach95] Broadcast Disks frequency-replication scheduler, the index-free
broadcast floor, and exhaustive testing oracles."""

from .signatures import (
    SignatureBroadcast,
    SignatureScheme,
    build_signature_broadcast,
    false_drop_probability,
)
from .broadcast_disks import (
    DiskLayout,
    broadcast_disk_cycle,
    expected_wait_flat,
    expected_wait_of_cycle,
    partition_into_disks,
)
from .exhaustive import brute_force_single_channel, exhaustive_optimal
from .flat import flat_broadcast_wait, flat_schedule_order
from .level_allocation import sv96_channels_needed, sv96_level_schedule

__all__ = [
    "exhaustive_optimal",
    "brute_force_single_channel",
    "flat_broadcast_wait",
    "flat_schedule_order",
    "sv96_channels_needed",
    "sv96_level_schedule",
    "DiskLayout",
    "partition_into_disks",
    "broadcast_disk_cycle",
    "expected_wait_of_cycle",
    "expected_wait_flat",
    "SignatureScheme",
    "SignatureBroadcast",
    "build_signature_broadcast",
    "false_drop_probability",
]
