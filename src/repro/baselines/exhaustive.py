"""Ground-truth exhaustive searches (testing oracles).

Two independent implementations of the optimum, sharing no code with the
pruned searches they validate:

* :func:`exhaustive_optimal` enumerates every path of the *unpruned*
  Algorithm 1 topological tree (any k) and scores each;
* :func:`brute_force_single_channel` enumerates every permutation of the
  data nodes with lazy index insertion — a different decomposition of
  the same k = 1 space.

Both are factorial-time; keep them to trees of a dozen-odd nodes.
"""

from __future__ import annotations

from itertools import permutations

from ..core.datatree import sequence_cost
from ..core.problem import AllocationProblem
from ..core.topological import iter_paths
from ..tree.index_tree import IndexTree

__all__ = ["exhaustive_optimal", "brute_force_single_channel"]


def exhaustive_optimal(
    problem: AllocationProblem,
) -> tuple[float, list[tuple[int, ...]]]:
    """Minimum data wait over every Algorithm 1 path, with one witness."""
    best_cost = float("inf")
    best_path: list[tuple[int, ...]] = []
    for path in iter_paths(problem):
        weighted = 0.0
        for slot, group in enumerate(path, start=1):
            for node_id in group:
                if problem.is_data[node_id]:
                    weighted += problem.weight[node_id] * slot
        cost = weighted / problem.total_weight if problem.total_weight else 0.0
        if cost < best_cost:
            best_cost = cost
            best_path = path
    return best_cost, best_path


def brute_force_single_channel(tree: IndexTree) -> tuple[float, list[int]]:
    """k = 1 optimum by scoring all data permutations (lazy indexes).

    Lazy index placement dominates eager placement (see
    :mod:`repro.core.datatree`), so the minimum over permutations is the
    global single-channel optimum. Returns (cost, data-id sequence).
    """
    problem = AllocationProblem(tree, channels=1)
    best_cost = float("inf")
    best_sequence: list[int] = []
    for candidate in permutations(problem.data_ids):
        cost = sequence_cost(problem, list(candidate))
        if cost < best_cost:
            best_cost = cost
            best_sequence = list(candidate)
    return best_cost, best_sequence
