"""The [SV96]-style level-per-channel allocation the paper argues against.

§1.1 (Fig. 1(b)): each level of the index tree is assigned to its own
channel and transmitted cyclically, with data on the remaining channels;
the scheme needs exactly ``depth`` channels (inflexible) and wastes
channel space on sparse levels (the chain-tree example).

To compare it under the paper's own objective we realise the scheme in
the slotted model of §2: level ``l`` airs on channel ``l``, each level's
nodes at consecutive slots, and every node is delayed just enough to
respect the parent-before-child condition (a cyclic transmission would
let a client *wrap around*, but formula (1) measures the in-cycle wait
from the cycle start, which the delay reproduces). The substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from ..broadcast.schedule import BroadcastSchedule
from ..tree.index_tree import IndexTree
from ..tree.node import Node

__all__ = ["sv96_channels_needed", "sv96_level_schedule"]


def sv96_channels_needed(tree: IndexTree) -> int:
    """Channels the [SV96] layout consumes: one per tree level."""
    return tree.depth()


def sv96_level_schedule(tree: IndexTree) -> BroadcastSchedule:
    """Build the level-per-channel schedule in the slotted model.

    Level ``l`` occupies channel ``l``; nodes of a level take increasing
    slots in left-to-right order, each pushed past its parent's slot.
    """
    placement: dict[Node, tuple[int, int]] = {}
    for level_number, level in enumerate(tree.levels(), start=1):
        next_free = 1
        for node in level:
            slot = next_free
            if node.parent is not None:
                slot = max(slot, placement[node.parent][1] + 1)
            placement[node] = (level_number, slot)
            next_free = slot + 1
    channels = sv96_channels_needed(tree)
    return BroadcastSchedule(tree, placement, channels=channels)
