"""Index-free baselines.

A broadcast without an index is the floor the paper's schemes build on:
clients cannot doze (every bucket must be heard until the target passes),
but the data wait itself is minimal because no slots are spent on index
buckets. Comparing against it quantifies the airtime cost of indexing,
and the frequency-ordered variant is the natural descending-weight
packing (Property 1 applied to an index-less tree).
"""

from __future__ import annotations

from ..tree.index_tree import IndexTree
from ..tree.node import DataNode

__all__ = ["flat_broadcast_wait", "flat_schedule_order"]


def flat_schedule_order(
    tree: IndexTree, channels: int = 1, by_weight: bool = True
) -> list[list[DataNode]]:
    """Slot groups of an index-free broadcast of the tree's data nodes.

    ``by_weight`` packs descending-weight, k per slot (optimal for an
    index-less broadcast by the usual exchange argument); otherwise the
    tree's left-to-right leaf order is used.
    """
    leaves = tree.data_nodes()
    if by_weight:
        leaves = sorted(leaves, key=lambda leaf: (-leaf.weight, leaf.label))
    return [
        list(leaves[start:start + channels])
        for start in range(0, len(leaves), channels)
    ]


def flat_broadcast_wait(
    tree: IndexTree, channels: int = 1, by_weight: bool = True
) -> float:
    """Average data wait of the index-free broadcast (formula (1)).

    Computed directly — an index-free program is not a feasible schedule
    of the index *tree* (its index nodes never air), so this bypasses
    :class:`BroadcastSchedule` validation deliberately.
    """
    groups = flat_schedule_order(tree, channels, by_weight)
    total = 0.0
    weighted = 0.0
    for slot, group in enumerate(groups, start=1):
        for leaf in group:
            total += leaf.weight
            weighted += leaf.weight * slot
    if total == 0:
        return 0.0
    return weighted / total
