"""Broadcast Disks ([Ach95]) — the frequency-replication alternative.

The paper's introduction splits the prior art in two: *broadcast the
popular data more often* (minimising access time — [IV94], [Ach95]) or
*index a skewed tree* (minimising tuning time — the paper's line). This
module implements the first camp's canonical algorithm so the two can
be compared under one roof:

1. items are partitioned into ``disks`` by access frequency (hottest
   disk first), each disk assigned an integer *relative frequency*;
2. each disk is split into ``max_chunks / rel_freq`` chunks, where
   ``max_chunks`` is the LCM of the relative frequencies;
3. one *minor cycle* interleaves the next chunk of every disk; a
   *major cycle* of ``max_chunks`` minor cycles airs every chunk of
   disk ``i`` exactly ``rel_freq_i`` times, evenly spaced.

Items may therefore repeat within a cycle — exactly the replication the
paper's own model forbids — and the client cannot doze (there is no
index), so the comparison bench reports both the access-side win and
the tuning-side loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..tree.node import DataNode

__all__ = [
    "DiskLayout",
    "partition_into_disks",
    "broadcast_disk_cycle",
    "expected_wait_of_cycle",
    "expected_wait_flat",
]


@dataclass
class DiskLayout:
    """A disk partition: per-disk item lists and relative frequencies."""

    disks: list[list[DataNode]]
    relative_frequencies: list[int]

    def __post_init__(self) -> None:
        if len(self.disks) != len(self.relative_frequencies):
            raise ValueError("one relative frequency per disk required")
        if not self.disks:
            raise ValueError("at least one disk required")
        for frequency in self.relative_frequencies:
            if frequency < 1:
                raise ValueError("relative frequencies must be >= 1")
        for disk in self.disks:
            if not disk:
                raise ValueError("disks must be non-empty")


def partition_into_disks(
    items: Sequence[DataNode],
    num_disks: int,
    relative_frequencies: Sequence[int] | None = None,
) -> DiskLayout:
    """Split items into ``num_disks`` frequency bands, hottest first.

    Items are sorted by descending weight and cut into near-equal bands;
    ``relative_frequencies`` default to ``num_disks, ..., 2, 1`` (the
    hot disk spins fastest), mirroring [Ach95]'s examples.
    """
    if num_disks < 1:
        raise ValueError("num_disks must be >= 1")
    if num_disks > len(items):
        raise ValueError("more disks than items")
    ordered = sorted(items, key=lambda item: (-item.weight, item.label))
    base, remainder = divmod(len(ordered), num_disks)
    disks: list[list[DataNode]] = []
    start = 0
    for disk_index in range(num_disks):
        size = base + (1 if disk_index < remainder else 0)
        disks.append(list(ordered[start:start + size]))
        start += size
    if relative_frequencies is None:
        relative_frequencies = list(range(num_disks, 0, -1))
    return DiskLayout(disks, list(relative_frequencies))


def broadcast_disk_cycle(layout: DiskLayout) -> list[DataNode]:
    """Generate one major cycle of the [Ach95] interleaving.

    Chunk sizes within a disk differ by at most one (the original
    algorithm pads with empty slots; balanced chunking avoids the
    padding without changing spacing guarantees materially).
    """
    frequencies = layout.relative_frequencies
    max_chunks = math.lcm(*frequencies)
    chunked: list[list[list[DataNode]]] = []
    for disk, frequency in zip(layout.disks, frequencies):
        chunk_count = max_chunks // frequency
        chunks: list[list[DataNode]] = [[] for _ in range(chunk_count)]
        # Balanced round-robin split keeps chunk sizes within one.
        base, remainder = divmod(len(disk), chunk_count)
        cursor = 0
        for chunk_index in range(chunk_count):
            size = base + (1 if chunk_index < remainder else 0)
            chunks[chunk_index] = disk[cursor:cursor + size]
            cursor += size
        chunked.append(chunks)

    cycle: list[DataNode] = []
    for minor in range(max_chunks):
        for disk_index, chunks in enumerate(chunked):
            chunk = chunks[minor % len(chunks)]
            cycle.extend(chunk)
    return cycle


def expected_wait_of_cycle(cycle: Sequence[DataNode]) -> float:
    """Exact expected wait of a (replicated) flat cycle.

    The client tunes in at the start of a uniformly random slot and
    waits until the end of the next occurrence of its item; items are
    requested proportionally to their weights. Computed exactly from
    the occurrence positions: with gaps ``g_1..g_m`` between successive
    occurrences (cyclically), the expected wait is
    ``Σ g_i (g_i + 1) / (2 L)``.
    """
    length = len(cycle)
    if length == 0:
        return 0.0
    positions: dict[int, list[int]] = {}
    weights: dict[int, float] = {}
    for slot, item in enumerate(cycle):
        positions.setdefault(id(item), []).append(slot)
        weights[id(item)] = item.weight

    total_weight = sum(weights.values())
    if total_weight == 0:
        return 0.0
    expectation = 0.0
    for key, slots in positions.items():
        gaps = [
            (later - earlier) % length or length
            for earlier, later in zip(slots, slots[1:] + [slots[0]])
        ]
        item_wait = sum(gap * (gap + 1) for gap in gaps) / (2 * length)
        expectation += weights[key] * item_wait
    return expectation / total_weight


def expected_wait_flat(items: Sequence[DataNode]) -> float:
    """Expected wait of the unreplicated flat cycle (each item once).

    The [Ach95] baseline's own baseline: with every gap equal to the
    full cycle, the wait is ``(L + 1) / 2`` regardless of weights.
    """
    return (len(items) + 1) / 2 if items else 0.0
