"""Signature-based filtering ([LL96], [TY96]) — §1's third index family.

Besides tree indexes and replication, the paper's survey cites
*signatures*: each data bucket is preceded by a short signature frame —
a superimposed-coding bitmap of the item's attribute hashes. A client
hashes its query into a query signature and listens only to signature
frames, dozing through any data bucket whose signature does not cover
the query; covered buckets are read (and may be *false drops* when the
superimposed bits collide).

The simple signature scheme implemented here is the baseline variant of
[LL96]: one signature frame per data bucket, interleaved
``sig_1 d_1 sig_2 d_2 ...``. Its trade-offs against the tree index are
exactly the ones the literature reports and the bench quantifies:

* tuning is spent on *every* signature frame (O(n) small reads) versus
  O(depth) bucket reads for the tree — signatures win only when
  signature frames are much smaller than buckets;
* there is no pointer to the future, so expected access is a full
  half-cycle regardless of skew;
* false drops add data-bucket reads at a rate set by the signature
  width and the number of hash functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..tree.node import DataNode

__all__ = [
    "SignatureScheme",
    "SignatureBroadcast",
    "build_signature_broadcast",
    "false_drop_probability",
]


@dataclass(frozen=True)
class SignatureScheme:
    """Superimposed-coding parameters.

    ``width`` bits per signature, ``hashes`` bit positions set per
    attribute value.
    """

    width: int = 64
    hashes: int = 3

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if not 1 <= self.hashes <= self.width:
            raise ValueError("hashes must be within 1..width")

    def signature_of(self, values: Sequence[str]) -> int:
        """Superimpose the signatures of all attribute values."""
        signature = 0
        for value in values:
            signature |= self._value_bits(value)
        return signature

    def _value_bits(self, value: str) -> int:
        bits = 0
        digest = hashlib.sha256(value.encode()).digest()
        # Draw `hashes` positions from successive digest windows.
        for position in range(self.hashes):
            window = digest[2 * position:2 * position + 2]
            bits |= 1 << (int.from_bytes(window, "big") % self.width)
        return bits

    def covers(self, bucket_signature: int, query_signature: int) -> bool:
        """Whether the bucket may contain the query (no false negatives)."""
        return bucket_signature & query_signature == query_signature


@dataclass
class SignatureBroadcast:
    """A simple-signature cycle: ``(signature, item)`` pairs in order."""

    scheme: SignatureScheme
    items: list[DataNode]
    signatures: list[int]
    signature_cost: float  # fraction of a bucket one signature frame takes

    @property
    def cycle_slots(self) -> float:
        """Cycle length in bucket units (signatures are fractional)."""
        return len(self.items) * (1.0 + self.signature_cost)

    def lookup(self, key: str) -> dict[str, float]:
        """Simulate one exact-match lookup, averaged over tune-in slots.

        Returns tuning time (buckets actually read, signature frames
        pro-rated at ``signature_cost``), the number of false drops,
        and the expected access time in bucket units.
        """
        query = self.scheme.signature_of([key])
        target_position = next(
            (p for p, item in enumerate(self.items) if item.label == key),
            None,
        )
        if target_position is None:
            raise KeyError(key)

        # From a uniform tune-in the client scans, on average, half the
        # cycle; scanning the full ring from just-past-the-target is the
        # worst case and what we charge (conservative, deterministic).
        read_signatures = len(self.items)
        false_drops = sum(
            1
            for position, signature in enumerate(self.signatures)
            if position != target_position
            and self.scheme.covers(signature, query)
        )
        tuning = (
            read_signatures * self.signature_cost + false_drops + 1.0
        )
        pair_cost = 1.0 + self.signature_cost
        access = len(self.items) * pair_cost / 2.0 + pair_cost
        return {
            "tuning_time": tuning,
            "false_drops": float(false_drops),
            "access_time": access,
        }

    def weighted_lookup_stats(self) -> dict[str, float]:
        """Weight-averaged lookup statistics over the whole catalog."""
        total = sum(item.weight for item in self.items)
        aggregate = {"tuning_time": 0.0, "false_drops": 0.0, "access_time": 0.0}
        for item in self.items:
            stats = self.lookup(item.label)
            share = item.weight / total if total else 1.0 / len(self.items)
            for metric, value in stats.items():
                aggregate[metric] += share * value
        return aggregate


def build_signature_broadcast(
    items: Sequence[DataNode],
    scheme: SignatureScheme | None = None,
    signature_cost: float = 0.125,
) -> SignatureBroadcast:
    """Assemble the simple-signature cycle for a catalog.

    ``signature_cost`` is the size of a signature frame relative to a
    data bucket (1/8 by default — a 64-bit signature against a
    64-byte bucket).
    """
    if not items:
        raise ValueError("catalog must be non-empty")
    if signature_cost <= 0:
        raise ValueError("signature_cost must be positive")
    if scheme is None:
        scheme = SignatureScheme()
    signatures = [scheme.signature_of([item.label]) for item in items]
    return SignatureBroadcast(
        scheme=scheme,
        items=list(items),
        signatures=signatures,
        signature_cost=signature_cost,
    )


def false_drop_probability(
    scheme: SignatureScheme, catalog_size: int, trials: int = 2000
) -> float:
    """Empirical false-drop rate of the scheme for exact-match queries.

    Generates ``trials`` synthetic labels, measures how often one
    label's signature covers another's. The analytic rate for
    superimposed coding is roughly ``(1 - e^{-k/m})^k`` per comparison
    with ``k`` hashes over ``m`` bits; this empirical check is what the
    tests assert monotonicity against.
    """
    del catalog_size  # rate is pairwise; kept for API symmetry
    drops = 0
    comparisons = 0
    signatures = [
        scheme.signature_of([f"probe-{i}"]) for i in range(trials)
    ]
    query = scheme.signature_of(["the-query"])
    for signature in signatures:
        comparisons += 1
        if scheme.covers(signature, query):
            drops += 1
    return drops / comparisons if comparisons else 0.0
