"""Interchange formats: the binary on-air bucket encoding (with a
frame-level receiver) and JSON persistence for trees and schedules."""

from .json_io import (
    PersistenceError,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from .wire import (
    WIRE_VERSION,
    AirFrame,
    DecodedBucket,
    DecodedPointer,
    FrameStreamDecoder,
    WireFormatError,
    decode_bucket,
    decode_cycle,
    encode_air_frame,
    encode_bucket,
    encode_program,
    index_bucket_size,
    max_fanout_for_bucket_size,
)
from .wire_client import WireAccessRecord, wire_walk

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "DecodedBucket",
    "DecodedPointer",
    "encode_bucket",
    "decode_bucket",
    "encode_program",
    "decode_cycle",
    "index_bucket_size",
    "max_fanout_for_bucket_size",
    "AirFrame",
    "encode_air_frame",
    "FrameStreamDecoder",
    "WireAccessRecord",
    "wire_walk",
    "PersistenceError",
    "tree_to_dict",
    "tree_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]
