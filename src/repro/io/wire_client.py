"""A receiver that navigates the broadcast from raw frames only.

Where :mod:`repro.client.protocol` walks the in-memory object graph,
this client sees nothing but the byte stream of
:mod:`repro.io.wire`: it decodes each frame it tunes to, routes by
comparing its search key against the pointer table's ``key_hi``
separators (an alphabetic index tree is a search tree — the property
the paper insists on in §1), and dozes between frames. Agreement with
the object-level protocol is asserted in the test suite, closing the
serialisation loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError
from .wire import DecodedBucket, WireFormatError, decode_bucket

__all__ = ["WireAccessRecord", "run_request_wire"]


class _LookupFailed(ReproError):
    pass


@dataclass(frozen=True)
class WireAccessRecord:
    """Measured outcome of one frame-level request."""

    key: str
    tune_slot: int
    access_time: int
    data_wait: int
    tuning_time: int
    channel_switches: int
    payload: bytes


def run_request_wire(
    frames: list[list[bytes]], key: str, tune_slot: int
) -> WireAccessRecord:
    """Fetch the item with search key ``key`` from an encoded cycle.

    ``frames[channel-1][slot-1]`` is the byte frame aired on that cell;
    the cycle repeats. The client tunes into channel 1 at ``tune_slot``,
    follows the next-cycle pointer to the root, then routes down the
    index by key comparison. Raises :class:`WireFormatError` on corrupt
    frames and :class:`ReproError` when the key routes nowhere.
    """
    cycle = len(frames[0])
    if not 1 <= tune_slot <= cycle:
        raise ValueError(f"tune_slot must be in 1..{cycle}")

    tuning = 1
    switches = 0
    current_channel = 1

    first = decode_bucket(frames[0][tune_slot - 1], channel=1, offset=tune_slot)
    if first.next_cycle_offset <= 0:
        raise WireFormatError("channel-1 frame lacks a next-cycle pointer")
    # Absolute slot (from this cycle's start) of the root frame.
    absolute = tune_slot + first.next_cycle_offset
    root_slot = absolute - cycle
    bucket = decode_bucket(frames[0][root_slot - 1], channel=1, offset=root_slot)
    tuning += 1
    if bucket.kind != "index":
        raise WireFormatError("next-cycle pointer landed off the index root")

    while bucket.kind == "index":
        pointer = _route(bucket, key)
        if pointer.channel != current_channel:
            switches += 1
            current_channel = pointer.channel
        absolute += pointer.offset
        slot = absolute - cycle
        if not 1 <= slot <= cycle:
            raise WireFormatError("pointer walked out of the cycle")
        bucket = decode_bucket(
            frames[pointer.channel - 1][slot - 1],
            channel=pointer.channel,
            offset=slot,
        )
        tuning += 1
        if bucket.kind == "empty":
            raise WireFormatError("pointer landed on an empty bucket")

    if bucket.label != key and not bucket.label.startswith(key):
        # Route by key ordering: landing elsewhere means the key is
        # absent from the broadcast (or the index is not alphabetic).
        raise _LookupFailed(
            f"lookup for {key!r} ended at {bucket.label!r}"
        )
    data_wait = absolute - cycle
    access_time = (cycle - tune_slot + 1) + data_wait
    return WireAccessRecord(
        key=key,
        tune_slot=tune_slot,
        access_time=access_time,
        data_wait=data_wait,
        tuning_time=tuning,
        channel_switches=switches,
        payload=bucket.payload,
    )


def _route(bucket: DecodedBucket, key: str):
    """Pick the child pointer whose key range covers ``key``.

    ``key_hi`` separators are the max key of each child's subtree; the
    first pointer with ``key <= key_hi`` covers the key. Falls off the
    end to the last pointer (keys above the maximum cannot exist, but a
    search must terminate somewhere to discover that).
    """
    for pointer in bucket.pointers:
        if key <= pointer.key_hi:
            return pointer
    if not bucket.pointers:
        raise WireFormatError(f"index bucket {bucket.label!r} has no pointers")
    return bucket.pointers[-1]
