"""A receiver that navigates the broadcast from raw frames only.

Where :mod:`repro.client.protocol` walks the in-memory object graph,
this client sees nothing but the byte stream of
:mod:`repro.io.wire`: it decodes each frame it tunes to, routes by
comparing its search key against the pointer table's ``key_hi``
separators (an alphabetic index tree is a search tree — the property
the paper insists on in §1), and dozes between frames.

The walk itself lives in :class:`repro.client.walk.PointerWalk` — the
sans-io state machine this module *drives* against an in-memory frame
grid, exactly as the asyncio tuner of :mod:`repro.net` drives it
against a socket. Agreement with the object-level protocol is asserted
in the test suite, closing the serialisation loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from .wire import decode_bucket

__all__ = ["WireAccessRecord", "wire_walk"]


@dataclass(frozen=True)
class WireAccessRecord:
    """Measured outcome of one frame-level request."""

    key: str
    tune_slot: int
    access_time: int
    data_wait: int
    tuning_time: int
    channel_switches: int
    payload: bytes


def wire_walk(
    frames: list[list[bytes]],
    key: str,
    tune_slot: int,
    *,
    tracer=None,
    walk_id: int | None = None,
    trace_context: tuple[int, int] | None = None,
) -> WireAccessRecord:
    """Fetch the item with search key ``key`` from an encoded cycle.

    ``frames[channel-1][slot-1]`` is the byte frame aired on that cell;
    the cycle repeats. The client tunes into channel 1 at ``tune_slot``,
    follows the next-cycle pointer to the root, then routes down the
    index by key comparison. Raises :class:`WireFormatError` on corrupt
    frames and :class:`ReproError` when the key routes nowhere.

    ``tracer`` is an optional :class:`~repro.obs.events.Tracer` the walk
    narrates into — the hook the trace-diff tooling uses to replay a
    request trace through the simulator in the live fleet's vocabulary.
    ``walk_id`` stamps the emitted events' ``walk`` correlation field
    (see :class:`~repro.obs.events.SlotRead`). ``trace_context`` is an
    optional ``(trace_id, span_id)`` causal context — what a wire-v3
    envelope would have carried had this grid been on live air — so a
    simulated walk driven through a span-capable tracer parents its
    segment spans exactly like a socket tuner's.
    """
    # Imported lazily: repro.client.walk itself builds on repro.io.wire,
    # and the package inits would otherwise form a cycle.
    from ..client.walk import PointerWalk

    cycle = len(frames[0])
    walk = PointerWalk(key, tune_slot, cycle, tracer=tracer, walk_id=walk_id)
    if trace_context is not None:
        walk.observe_trace(*trace_context)
    while (listen := walk.next_listen()) is not None:
        slot = (listen.absolute_slot - 1) % cycle + 1
        bucket = decode_bucket(
            frames[listen.channel - 1][slot - 1],
            channel=listen.channel,
            offset=slot,
        )
        walk.deliver(bucket)
    result = walk.result
    return WireAccessRecord(
        key=key,
        tune_slot=tune_slot,
        access_time=result.access_time,
        data_wait=result.data_wait,
        tuning_time=result.tuning_time,
        channel_switches=result.channel_switches,
        payload=result.payload,
    )
