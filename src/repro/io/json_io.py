"""JSON persistence for index trees and broadcast schedules.

A production broadcast server plans offline and ships the plan to the
transmitter; these helpers give both artifacts a stable, human-readable
interchange form:

* trees serialise structurally (labels, weights, keys, children);
* schedules serialise as the tree plus a placement table keyed by the
  node's preorder position — positions, not labels, so trees with
  duplicate labels round-trip exactly.

Round-tripping preserves structure, weights, placements and therefore
every metric; the tests assert equality through
:func:`repro.tree.validation.trees_equal` and the data wait.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..broadcast.schedule import BroadcastSchedule
from ..exceptions import ReproError
from ..tree.index_tree import IndexTree
from ..tree.node import DataNode, IndexNode, Node

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]


class PersistenceError(ReproError):
    """A serialised document is malformed."""


def tree_to_dict(tree: IndexTree) -> dict[str, Any]:
    """Serialise a tree to a JSON-compatible dict."""

    def encode(node: Node) -> dict[str, Any]:
        if isinstance(node, DataNode):
            document: dict[str, Any] = {
                "type": "data",
                "label": node.label,
                "weight": node.weight,
            }
            if node.key is not None:
                document["key"] = node.key
            return document
        assert isinstance(node, IndexNode)
        return {
            "type": "index",
            "label": node.label,
            "children": [encode(child) for child in node.children],
        }

    return {"format": "broadcast-alloc/tree", "version": 1, "root": encode(tree.root)}


def tree_from_dict(document: dict[str, Any]) -> IndexTree:
    """Rebuild a tree from its serialised form."""
    if document.get("format") != "broadcast-alloc/tree":
        raise PersistenceError("not a broadcast-alloc tree document")

    def decode(node_document: dict[str, Any]) -> Node:
        kind = node_document.get("type")
        if kind == "data":
            return DataNode(
                node_document["label"],
                node_document["weight"],
                key=node_document.get("key"),
            )
        if kind == "index":
            children = [decode(c) for c in node_document.get("children", [])]
            return IndexNode(node_document.get("label", ""), children)
        raise PersistenceError(f"unknown node type {kind!r}")

    return IndexTree(decode(document["root"]))


def schedule_to_dict(schedule: BroadcastSchedule) -> dict[str, Any]:
    """Serialise a schedule (tree + placement, preorder-position keyed)."""
    nodes = schedule.tree.nodes()
    placement = [
        list(schedule.position(node)) for node in nodes
    ]
    return {
        "format": "broadcast-alloc/schedule",
        "version": 1,
        "channels": schedule.channels,
        "tree": tree_to_dict(schedule.tree),
        "placement": placement,
    }


def schedule_from_dict(document: dict[str, Any]) -> BroadcastSchedule:
    """Rebuild (and validate) a schedule from its serialised form."""
    if document.get("format") != "broadcast-alloc/schedule":
        raise PersistenceError("not a broadcast-alloc schedule document")
    tree = tree_from_dict(document["tree"])
    nodes = tree.nodes()
    placement_rows = document["placement"]
    if len(placement_rows) != len(nodes):
        raise PersistenceError(
            "placement table does not cover every tree node"
        )
    placement = {
        node: (int(channel), int(slot))
        for node, (channel, slot) in zip(nodes, placement_rows)
    }
    return BroadcastSchedule(
        tree, placement, channels=int(document["channels"])
    )


def save_schedule(schedule: BroadcastSchedule, path: str | Path) -> None:
    """Write a schedule document to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2) + "\n"
    )


def load_schedule(path: str | Path) -> BroadcastSchedule:
    """Read and validate a schedule document from ``path``."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
