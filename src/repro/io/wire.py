"""Binary bucket encoding — the broadcast's wire format (§2.1).

The paper's medium transmits fixed-size *buckets*; an index bucket must
carry its whole pointer table, which is exactly why [SV96] adjusts the
tree fanout "such that a tree node can fit in a wireless packet of any
size". This module makes that constraint concrete:

* :func:`encode_program` serialises a compiled
  :class:`~repro.broadcast.BroadcastProgram` into one ``bucket_size``-
  byte frame per (channel, slot) cell;
* :func:`decode_bucket` parses a frame back into a
  :class:`DecodedBucket` — everything a receiver needs and nothing the
  object graph knows;
* :func:`max_fanout_for_bucket_size` inverts the size arithmetic, the
  number [SV96] tunes the tree with.

Version-1 frame layout (big-endian, ASCII-safe labels/keys):

====== ======================================================
offset content
====== ======================================================
0      version marker ``0xB1`` (version 1)
1–4    CRC-32 of everything after this field (body + padding)
5      bucket type: 0 empty, 1 index, 2 data
6–7    next-cycle pointer offset (0 when absent; channel-1 only)
8      label length ``L`` (0–255)
9–     label bytes
..     index: pointer count ``n``, then per pointer
       ``channel:u8, offset:u16, key length:u8, key bytes`` —
       the key is the *max key* of the child's subtree, so a
       receiver routes by key comparison alone
       data: payload length ``u16`` + payload bytes
pad    zeros up to ``bucket_size``
====== ======================================================

A legacy *version-0* frame is the same body without the five-byte
version/checksum header (its first byte is the bucket type, 0–2, which
can never collide with the ``0xB1`` marker); :func:`decode_bucket`
still reads those, so a v1 receiver interoperates with v0 archives.
The checksum is what lets an unreliable channel's payload corruption
(:mod:`repro.faults`) be *detected* instead of silently mis-routing a
client: any flipped byte makes :func:`decode_bucket` raise
:class:`WireFormatError` carrying the channel/offset the frame came
from.

Every frame is exactly ``bucket_size`` bytes; content that does not fit
raises :class:`WireFormatError` instead of silently truncating — the
same hard edge a real MAC layer has.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..broadcast.pointers import BroadcastProgram
from ..exceptions import ReproError
from ..tree.node import DataNode, IndexNode, Node

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "DecodedPointer",
    "DecodedBucket",
    "encode_bucket",
    "decode_bucket",
    "encode_program",
    "decode_cycle",
    "index_bucket_size",
    "max_fanout_for_bucket_size",
    "AirFrame",
    "encode_air_frame",
    "FrameStreamDecoder",
]

DEFAULT_BUCKET_SIZE = 96

WIRE_VERSION = 1
"""Frame version :func:`encode_bucket` emits by default."""

_MAGIC_V1 = 0xB1  # outside the 0..2 v0 type-byte range, so self-identifying
_V1_HEADER = 5  # marker byte + CRC-32

_TYPE_EMPTY = 0
_TYPE_INDEX = 1
_TYPE_DATA = 2


class WireFormatError(ReproError):
    """A bucket's content does not fit the frame, or a frame is corrupt."""


@dataclass(frozen=True)
class DecodedPointer:
    """A received (channel, offset) pointer with its routing key."""

    channel: int
    offset: int
    key_hi: str


@dataclass
class DecodedBucket:
    """A parsed frame: what a receiver knows about one bucket."""

    kind: str  # "empty" | "index" | "data"
    label: str = ""
    next_cycle_offset: int = 0
    pointers: list[DecodedPointer] = field(default_factory=list)
    payload: bytes = b""


def _subtree_max_key(node: Node) -> str:
    """The largest routing key under ``node`` (keys default to labels)."""
    best = ""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, DataNode):
            key = str(current.key) if current.key is not None else current.label
            best = max(best, key)
        else:
            assert isinstance(current, IndexNode)
            stack.extend(current.children)
    return best


def encode_bucket(
    bucket, bucket_size: int = DEFAULT_BUCKET_SIZE, *, version: int = WIRE_VERSION
) -> bytes:
    """Serialise one :class:`~repro.broadcast.bucket.Bucket` to a frame.

    ``version`` selects the frame format: 1 (default) prefixes the body
    with the version marker and CRC-32 checksum, 0 emits the legacy
    unchecksummed layout.
    """
    if version not in (0, 1):
        raise WireFormatError(f"unknown wire version {version}")
    next_offset = (
        bucket.next_cycle_pointer.offset if bucket.next_cycle_pointer else 0
    )
    if not 0 <= next_offset <= 0xFFFF:
        raise WireFormatError(f"next-cycle offset {next_offset} out of range")

    if bucket.node is None:
        body = b""
        kind = _TYPE_EMPTY
        label = b""
    else:
        label = bucket.node.label.encode()
        if len(label) > 255:
            raise WireFormatError("label longer than 255 bytes")
        if isinstance(bucket.node, IndexNode):
            kind = _TYPE_INDEX
            parts = [struct.pack(">B", len(bucket.child_pointers))]
            for pointer, child in zip(
                bucket.child_pointers, bucket.node.children
            ):
                key = _subtree_max_key(child).encode()
                if len(key) > 255:
                    raise WireFormatError("routing key longer than 255 bytes")
                if not 0 < pointer.offset <= 0xFFFF:
                    raise WireFormatError(
                        f"child offset {pointer.offset} out of range"
                    )
                parts.append(
                    struct.pack(">BHB", pointer.channel, pointer.offset, len(key))
                    + key
                )
            body = b"".join(parts)
        else:
            kind = _TYPE_DATA
            payload = f"item:{bucket.node.label}".encode()
            body = struct.pack(">H", len(payload)) + payload

    header = _V1_HEADER if version == 1 else 0
    content = struct.pack(">BHB", kind, next_offset, len(label)) + label + body
    if header + len(content) > bucket_size:
        raise WireFormatError(
            f"bucket content ({header + len(content)} bytes) exceeds the "
            f"{bucket_size}-byte frame; lower the tree fanout or raise "
            "the bucket size"
        )
    padded = content + b"\x00" * (bucket_size - header - len(content))
    if version == 0:
        return padded
    return struct.pack(">BI", _MAGIC_V1, zlib.crc32(padded)) + padded


def _decode_text(data: bytes, what: str) -> str:
    try:
        return data.decode()
    except UnicodeDecodeError as error:
        raise WireFormatError(f"{what} is not valid UTF-8") from error


def _frame_context(channel: int | None, offset: int | None) -> str:
    """Human-readable provenance suffix for decode errors."""
    parts = []
    if channel is not None:
        parts.append(f"channel {channel}")
    if offset is not None:
        parts.append(f"offset {offset}")
    return f" ({', '.join(parts)})" if parts else ""


def decode_bucket(
    frame: bytes, *, channel: int | None = None, offset: int | None = None
) -> DecodedBucket:
    """Parse one frame; raises :class:`WireFormatError` on corruption.

    Both versions are accepted: a version-1 frame (marker ``0xB1``) has
    its CRC-32 verified first — a mismatch means the channel damaged the
    frame in flight — while a legacy version-0 frame (first byte 0–2) is
    parsed structurally only. ``channel``/``offset`` are optional
    provenance, included in every error so a receiver's logs say *which
    airing* was bad.
    """
    where = _frame_context(channel, offset)
    try:
        return _decode_frame(frame, where)
    except WireFormatError:
        raise
    except (struct.error, IndexError, ValueError) as error:
        # Belt-and-braces: every truncation *should* hit an explicit
        # length guard above a struct read, but a short or mangled frame
        # must never surface a bare parsing exception to a receiver.
        raise WireFormatError(
            f"truncated or malformed frame{where}: {error}"
        ) from error


def _decode_frame(frame: bytes, where: str) -> DecodedBucket:
    if not frame:
        raise WireFormatError(f"empty frame{where}")
    if frame[0] == _MAGIC_V1:
        if len(frame) < _V1_HEADER:
            raise WireFormatError(
                f"frame shorter than the version-1 header{where}"
            )
        (stored,) = struct.unpack(">I", frame[1:_V1_HEADER])
        body = frame[_V1_HEADER:]
        actual = zlib.crc32(body)
        if stored != actual:
            raise WireFormatError(
                f"checksum mismatch{where}: stored {stored:#010x}, "
                f"computed {actual:#010x} — frame corrupted in flight"
            )
        return _decode_body(body, where)
    if frame[0] in (_TYPE_EMPTY, _TYPE_INDEX, _TYPE_DATA):
        return _decode_body(frame, where)  # legacy version-0 frame
    raise WireFormatError(f"unknown wire version byte {frame[0]:#04x}{where}")


def _decode_body(frame: bytes, where: str = "") -> DecodedBucket:
    """Parse the (un)checksummed body shared by both frame versions."""
    if len(frame) < 4:
        raise WireFormatError(f"frame shorter than the fixed header{where}")
    kind, next_offset, label_length = struct.unpack(">BHB", frame[:4])
    cursor = 4
    if cursor + label_length > len(frame):
        raise WireFormatError(f"label overruns the frame{where}")
    label = _decode_text(frame[cursor:cursor + label_length], "label")
    cursor += label_length

    if kind == _TYPE_EMPTY:
        return DecodedBucket("empty", next_cycle_offset=next_offset)
    if kind == _TYPE_DATA:
        if cursor + 2 > len(frame):
            raise WireFormatError(
                f"data payload header overruns the frame{where}"
            )
        (payload_length,) = struct.unpack(">H", frame[cursor:cursor + 2])
        cursor += 2
        if cursor + payload_length > len(frame):
            raise WireFormatError(f"data payload overruns the frame{where}")
        payload = frame[cursor:cursor + payload_length]
        return DecodedBucket(
            "data", label=label, next_cycle_offset=next_offset, payload=payload
        )
    if kind == _TYPE_INDEX:
        if cursor >= len(frame):
            raise WireFormatError(f"pointer count missing{where}")
        count = frame[cursor]
        cursor += 1
        pointers = []
        for _ in range(count):
            if cursor + 4 > len(frame):
                raise WireFormatError(
                    f"pointer record overruns the frame{where}"
                )
            channel, offset, key_length = struct.unpack(
                ">BHB", frame[cursor:cursor + 4]
            )
            cursor += 4
            if cursor + key_length > len(frame):
                raise WireFormatError(f"routing key overruns the frame{where}")
            key = _decode_text(frame[cursor:cursor + key_length], "routing key")
            cursor += key_length
            pointers.append(DecodedPointer(channel, offset, key))
        return DecodedBucket(
            "index",
            label=label,
            next_cycle_offset=next_offset,
            pointers=pointers,
        )
    raise WireFormatError(f"unknown bucket type {kind}{where}")


def encode_program(
    program: BroadcastProgram,
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    *,
    version: int = WIRE_VERSION,
) -> list[list[bytes]]:
    """Serialise a whole cycle: ``frames[channel-1][slot-1]``."""
    return [
        [encode_bucket(bucket, bucket_size, version=version) for bucket in row]
        for row in program.buckets
    ]


def decode_cycle(frames: list[list[bytes]]) -> list[list[DecodedBucket]]:
    """Parse every frame of an encoded cycle (either version)."""
    return [
        [
            decode_bucket(frame, channel=channel, offset=slot)
            for slot, frame in enumerate(row, start=1)
        ]
        for channel, row in enumerate(frames, start=1)
    ]


def index_bucket_size(
    fanout: int,
    label_bytes: int = 8,
    key_bytes: int = 8,
    *,
    version: int = WIRE_VERSION,
) -> int:
    """Frame bytes an index bucket with ``fanout`` pointers needs."""
    header = _V1_HEADER if version == 1 else 0
    return header + 4 + label_bytes + 1 + fanout * (4 + key_bytes)


def max_fanout_for_bucket_size(
    bucket_size: int,
    label_bytes: int = 8,
    key_bytes: int = 8,
    *,
    version: int = WIRE_VERSION,
) -> int:
    """The largest tree fanout whose index bucket fits ``bucket_size``.

    This is the [SV96] tuning knob: pick the k-ary alphabetic tree whose
    nodes fill — but do not overflow — a wireless packet.
    """
    header = _V1_HEADER if version == 1 else 0
    budget = bucket_size - header - 4 - label_bytes - 1
    per_pointer = 4 + key_bytes
    return max(0, budget // per_pointer)


# ---------------------------------------------------------------------------
# Transport envelope — how a live station airs frames over a byte stream.
# ---------------------------------------------------------------------------

_AIR_MAGIC = 0xAE  # version-1 envelope
_AIR_MAGIC_V2 = 0xAF  # version-2 envelope: v1 + schedule-version stamp
_AIR_MAGIC_V3 = 0xB0  # version-3 envelope: v2 + trace context
_AIR_HEADER = struct.Struct(">BBBIH")  # magic, status, channel, slot, length
_AIR_HEADER_V2 = struct.Struct(">BBBIHI")  # … + schedule version (u32)
_AIR_HEADER_V3 = struct.Struct(">BBBIHIII")  # … + trace id, span id (u32 each)

_AIR_OK = 0
_AIR_LOST = 1

_MAX_AIR_PAYLOAD = 0xFFFF
_MAX_SCHEDULE_VERSION = 0xFFFFFFFF


@dataclass(frozen=True)
class AirFrame:
    """One airing as it crosses a transport: provenance + frame bytes.

    The bucket wire format (:func:`encode_bucket`) is position-blind —
    a frame does not say when or where it aired. A live receiver needs
    exactly that to drive its pointer walk, so the station wraps each
    airing in a 9-byte envelope carrying the channel, the absolute slot
    (1-based, station air time) and a status byte: ``lost`` marks an
    airing the channel dropped (the client was tuned in and heard
    nothing — the envelope is how a *simulated* unreliable medium tells
    a real socket client about an absence). Corrupted airings travel as
    ordinary payloads; the bucket CRC is what detects those, end to
    end, exactly as over real air.

    ``schedule_version`` is the :mod:`repro.sched` version of the plan
    that produced the airing. ``0`` means unversioned: the envelope
    encodes to the original 9-byte version-1 layout, byte-identical to
    pre-versioning stations. A positive version selects the 13-byte
    version-2 envelope; receivers decode both, which is how a cutover
    becomes *visible* to a tuner mid-walk instead of silently swapping
    the pointer graph under it.

    ``trace_id``/``span_id`` are the causal trace context of the
    publish that put this schedule on the air (see
    :mod:`repro.obs.spans`). ``(0, 0)`` means untraced and the frame
    encodes as v1/v2 unchanged; a present context selects the 21-byte
    version-3 envelope, which is how one trace links a server replan
    through the station cutover to every tuner walk it restarts.
    """

    channel: int
    absolute_slot: int
    payload: bytes = b""
    lost: bool = False
    schedule_version: int = 0
    trace_id: int = 0
    span_id: int = 0


def encode_air_frame(air: AirFrame) -> bytes:
    """Serialise one envelope (+ payload) for a byte-stream transport.

    Unversioned airings (``schedule_version == 0``) emit the version-1
    envelope unchanged; versioned airings emit version 2; airings
    carrying a trace context emit version 3 — so an untraced,
    unversioned station stays byte-identical to the pre-versioning
    wire, frame for frame.
    """
    if not 1 <= air.channel <= 0xFF:
        raise WireFormatError(f"air channel {air.channel} out of range")
    if not 1 <= air.absolute_slot <= 0xFFFFFFFF:
        raise WireFormatError(
            f"absolute slot {air.absolute_slot} out of range"
        )
    if len(air.payload) > _MAX_AIR_PAYLOAD:
        raise WireFormatError("air payload exceeds 64 KiB")
    if air.lost and air.payload:
        raise WireFormatError("a lost airing cannot carry a payload")
    if not 0 <= air.schedule_version <= _MAX_SCHEDULE_VERSION:
        raise WireFormatError(
            f"schedule version {air.schedule_version} out of range"
        )
    if not 0 <= air.trace_id <= 0xFFFFFFFF:
        raise WireFormatError(f"trace id {air.trace_id} out of range")
    if not 0 <= air.span_id <= 0xFFFFFFFF:
        raise WireFormatError(f"span id {air.span_id} out of range")
    status = _AIR_LOST if air.lost else _AIR_OK
    if air.trace_id or air.span_id:
        header = _AIR_HEADER_V3.pack(
            _AIR_MAGIC_V3, status, air.channel, air.absolute_slot,
            len(air.payload), air.schedule_version,
            air.trace_id, air.span_id,
        )
    elif air.schedule_version == 0:
        header = _AIR_HEADER.pack(
            _AIR_MAGIC, status, air.channel, air.absolute_slot,
            len(air.payload),
        )
    else:
        header = _AIR_HEADER_V2.pack(
            _AIR_MAGIC_V2, status, air.channel, air.absolute_slot,
            len(air.payload), air.schedule_version,
        )
    return header + air.payload


class FrameStreamDecoder:
    """Incremental envelope parser for a byte-stream transport.

    TCP delivers bytes, not messages: one ``read()`` may return half an
    envelope, or three and a half. Feed whatever arrives to
    :meth:`feed`; it returns every envelope completed so far and
    buffers the partial tail for the next chunk. A byte that cannot
    begin an envelope raises :class:`WireFormatError` — on a stream
    transport there is no resynchronising past garbage.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their envelope."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[AirFrame]:
        """Absorb ``data``; return the envelopes it completed, in order.

        All three envelope versions are accepted, per frame: a stream
        may interleave version-1, version-2 and version-3 airings (a
        station mid-way through adopting versioning or tracing does
        exactly that).
        """
        self._buffer.extend(data)
        frames: list[AirFrame] = []
        cursor = 0
        while len(self._buffer) - cursor >= 1:
            magic = self._buffer[cursor]
            if magic == _AIR_MAGIC:
                header = _AIR_HEADER
            elif magic == _AIR_MAGIC_V2:
                header = _AIR_HEADER_V2
            elif magic == _AIR_MAGIC_V3:
                header = _AIR_HEADER_V3
            else:
                raise WireFormatError(
                    f"bad air-envelope magic {magic:#04x}; stream is "
                    "desynchronised"
                )
            size = header.size
            if len(self._buffer) - cursor < size:
                break  # header still in flight
            fields = header.unpack_from(self._buffer, cursor)
            trace_id = span_id = 0
            if magic == _AIR_MAGIC:
                _, status, channel, slot, length = fields
                version = 0
            elif magic == _AIR_MAGIC_V2:
                _, status, channel, slot, length, version = fields
                if version == 0:
                    raise WireFormatError(
                        "version-2 air envelope carries schedule version 0"
                    )
            else:
                (
                    _, status, channel, slot, length, version,
                    trace_id, span_id,
                ) = fields
                if trace_id == 0 and span_id == 0:
                    raise WireFormatError(
                        "version-3 air envelope carries no trace context"
                    )
            if status not in (_AIR_OK, _AIR_LOST):
                raise WireFormatError(f"unknown air status {status}")
            if len(self._buffer) - cursor - size < length:
                break  # payload still in flight
            start = cursor + size
            payload = bytes(self._buffer[start:start + length])
            if status == _AIR_LOST and payload:
                raise WireFormatError("lost airing carries a payload")
            frames.append(
                AirFrame(
                    channel=channel,
                    absolute_slot=slot,
                    payload=payload,
                    lost=status == _AIR_LOST,
                    schedule_version=version,
                    trace_id=trace_id,
                    span_id=span_id,
                )
            )
            cursor = start + length
        if cursor:
            del self._buffer[:cursor]
        return frames
