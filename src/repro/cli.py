"""Command-line interface: ``broadcast-alloc`` / ``python -m repro.cli``.

Subcommands regenerate each experiment on demand:

* ``demo``     — solve the Fig. 1 running example on 1..k channels;
* ``table1``   — the §4.1 pruning-effects table;
* ``fig14``    — the §4.2 Sorting-vs-Optimal sweep;
* ``compare``  — heuristics/baselines vs optimal on random trees;
* ``channels`` — data wait vs channel count (Corollary 1 regime);
* ``ablation`` — pruning-rule search-effort ablation;
* ``bench``    — search-core perf suite (seed vs overhauled vs DFS B&B),
  optionally emitting a JSON perf record via ``--json``;
* ``faults``   — loss-probability sweep over registry planners on
  unreliable channels, including the loss=0 differential gate (the
  command exits non-zero when the gate fails);
* ``bench-server`` — full-stack serving-loop bench under perfect and
  lossy air, writing ``BENCH_server.json`` via ``--json``;
* ``serve``    — put a compiled plan on the air over real sockets
  (:mod:`repro.net`); Ctrl-C shuts down cleanly and flushes stats;
  ``--metrics-port`` additionally mounts the :mod:`repro.obs` HTTP
  endpoint (``/metrics`` Prometheus exposition + ``/healthz``);
  ``--store DIR`` serves from a :mod:`repro.sched` schedule store and
  follows it live — versions published behind the station's back
  (``sched rollback`` from another shell) cut over at the next cycle
  boundary with zero dropped walks, and the crash snapshot is flushed
  before the sockets close;
* ``sched``    — the versioned schedule store (:mod:`repro.sched`):
  ``sched log/show/diff`` inspect history, ``sched rollback`` restores
  an old version byte-exactly as a new head, ``sched gc`` drops
  unreferenced objects, ``sched bench`` times publish/load/rollback
  (``BENCH_sched.json`` via ``--json``) and ``sched loadtest`` gates
  the live replan-and-roll-back cutover under a tuner fleet;
* ``tune``     — one live client walk against a running station;
* ``loadtest`` — the concurrent tuner-fleet harness; with
  ``--check-parity`` it exits non-zero unless the socket fleet's
  access/tuning times match the in-process simulator exactly; with
  ``--trace PREFIX`` it writes the fleet's JSONL event trace
  (``PREFIX.live.jsonl``) alongside a lossless simulator replay of the
  identical request trace (``PREFIX.sim.jsonl``) — the input pair for
  ``obs diff``;
* ``engine``   — the vectorised batch walk engine (:mod:`repro.engine`):
  ``engine bench`` measures batch-vs-scalar throughput with the
  per-walk bit-identity differential gates built into the record's
  checks, writing ``BENCH_engine.json`` via ``--json``; ``loadtest
  --engine batch`` runs the fleet's request trace through the batch
  simulator instead of sockets;
* ``obs``      — trace tooling: ``obs timeline`` reconstructs the
  per-(channel, slot) view of one JSONL trace, ``obs diff`` compares
  two traces and names the first divergent slot;
* ``bench-merge`` — fold stamped ``BENCH_*.json`` records into one
  ``BENCH_all.json`` (see :mod:`repro.bench_envelope`).

Installed as the ``repro`` console script (``broadcast-alloc`` remains
as the historical alias).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.comparisons import (
    channel_scaling,
    compare_methods,
    format_channel_scaling,
    format_method_comparison,
    format_pruning_ablation,
    pruning_ablation,
)
from .analysis.fig14 import format_fig14, run_fig14
from .analysis.table1 import format_table1, run_table1
from .core.optimal import solve
from .tree.builders import paper_example_tree

__all__ = ["main", "build_parser"]


def _add_envelope_options(sub: argparse.ArgumentParser) -> None:
    """``--rev``/``--timestamp`` stamps for JSON-writing bench commands."""
    sub.add_argument(
        "--rev",
        default=None,
        help="git revision to stamp into the bench envelope "
        "(the Makefile passes `git rev-parse --short HEAD`)",
    )
    sub.add_argument(
        "--timestamp",
        default=None,
        help="ISO timestamp to stamp into the bench envelope "
        "(the Makefile passes `date -u`)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="broadcast-alloc",
        description=(
            "Optimal index and data allocation in multiple broadcast "
            "channels (Lo & Chen, ICDE 2000) - experiment runner"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2000, help="RNG seed (default 2000)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="solve the Fig. 1 example")
    demo.add_argument(
        "--channels", type=int, default=2, help="max channel count to show"
    )

    table1 = commands.add_parser("table1", help="Table 1 pruning effects")
    table1.add_argument(
        "--max-fanout",
        type=int,
        default=6,
        help="largest m to include (6 matches the paper)",
    )
    table1.add_argument(
        "--max-enum-p12",
        type=int,
        default=6,
        help="largest m to enumerate the P1,2 column for",
    )

    fig14 = commands.add_parser("fig14", help="Fig. 14 Sorting vs Optimal")
    fig14.add_argument("--trials", type=int, default=30)

    compare = commands.add_parser(
        "compare", help="heuristics and baselines vs optimal"
    )
    compare.add_argument("--trials", type=int, default=20)
    compare.add_argument("--data-count", type=int, default=12)

    channels = commands.add_parser(
        "channels", help="data wait vs channel count"
    )
    channels.add_argument("--fanout", type=int, default=3)

    commands.add_parser("ablation", help="pruning-rule ablation")

    bench = commands.add_parser(
        "bench",
        help="search-core perf suite: seed vs overhauled vs DFS B&B",
    )
    bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the full JSON perf record to PATH",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per case; wall time is the best-of-N "
        "(default 3)",
    )
    _add_envelope_options(bench)

    spaces = commands.add_parser(
        "spaces", help="render the reduced search trees (Figs. 9-12)"
    )
    spaces.add_argument(
        "--channels", type=int, default=2, help="k for the topological tree"
    )

    faults = commands.add_parser(
        "faults",
        help="loss sweep over registry planners on unreliable channels",
    )
    faults.add_argument(
        "--planners",
        default="auto,sorting,sv96",
        help="comma-separated repro.planners registry names "
        "(default: auto,sorting,sv96)",
    )
    faults.add_argument(
        "--losses",
        default="0,0.05,0.1,0.2,0.3",
        help="comma-separated per-channel loss probabilities "
        "(0 is always re-added: it carries the differential gate)",
    )
    faults.add_argument("--channels", type=int, default=2)
    faults.add_argument("--requests", type=int, default=500)
    faults.add_argument(
        "--corruption",
        type=float,
        default=0.0,
        help="payload corruption probability at non-zero loss points",
    )
    faults.add_argument(
        "--burst",
        action="store_true",
        help="Gilbert-Elliott burst losses instead of i.i.d.",
    )
    faults.add_argument(
        "--policy",
        choices=("retry-parent", "next-cycle"),
        default="retry-parent",
    )
    faults.add_argument(
        "--max-cycles",
        type=int,
        default=8,
        help="give-up bound, in cycles from tune-in (default 8)",
    )
    faults.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the full sweep record to PATH",
    )

    bench_server = commands.add_parser(
        "bench-server",
        help="full-stack serving-loop bench (lossless vs lossy air)",
    )
    bench_server.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the JSON perf record to PATH",
    )
    _add_envelope_options(bench_server)

    bench_merge = commands.add_parser(
        "bench-merge",
        help="merge stamped BENCH_*.json records into BENCH_all.json",
    )
    bench_merge.add_argument(
        "inputs",
        nargs="+",
        metavar="BENCH_JSON",
        help="stamped bench records (BENCH_search/server/net.json)",
    )
    bench_merge.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="path of the merged BENCH_all.json document",
    )

    def add_program_options(sub: argparse.ArgumentParser) -> None:
        """Knobs shared by every repro.net command that builds a plan."""
        sub.add_argument("--items", type=int, default=24)
        sub.add_argument("--channels", type=int, default=3)
        sub.add_argument("--fanout", type=int, default=3)
        sub.add_argument(
            "--planner",
            default="sorting",
            help="repro.planners registry name (default 'sorting')",
        )

    serve = commands.add_parser(
        "serve", help="air a compiled plan over sockets (repro.net)"
    )
    add_program_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument(
        "--transport", choices=("tcp", "udp"), default="tcp"
    )
    serve.add_argument(
        "--slot-duration",
        type=float,
        default=0.0,
        help="seconds per slot; 0 = logical time (TCP only)",
    )
    serve.add_argument(
        "--loss", type=float, default=0.0, help="per-bucket loss probability"
    )
    serve.add_argument(
        "--corruption",
        type=float,
        default=0.0,
        help="per-bucket payload corruption probability",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve /metrics (Prometheus) and /healthz on this "
        "port (0 picks a free one)",
    )
    serve.add_argument(
        "--store",
        dest="store_dir",
        default=None,
        metavar="DIR",
        help="serve from a repro.sched schedule store: an empty store "
        "is seeded with the demo plan as version 1, otherwise the head "
        "version goes on air; the store is then polled and any version "
        "published behind the station's back (a replan or a 'sched "
        "rollback' from another shell) cuts over at the next cycle "
        "boundary with zero dropped walks",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="store poll period in seconds when --store is given "
        "(default 0.5)",
    )

    tune = commands.add_parser(
        "tune", help="one live client walk against a running station"
    )
    tune.add_argument("--host", default="127.0.0.1")
    tune.add_argument("--port", type=int, required=True)
    tune.add_argument("--key", required=True, help="search key to fetch")
    tune.add_argument(
        "--tune-slot",
        type=int,
        default=1,
        help="cycle-relative slot to tune in at (default 1)",
    )
    tune.add_argument(
        "--policy", choices=("retry-parent", "next-cycle"), default=None
    )
    tune.add_argument(
        "--max-cycles",
        type=int,
        default=8,
        help="recovery give-up bound, in cycles (default 8)",
    )

    loadtest = commands.add_parser(
        "loadtest",
        help="concurrent tuner fleet on a loopback station",
    )
    add_program_options(loadtest)
    loadtest.add_argument("--tuners", type=int, default=1000)
    loadtest.add_argument(
        "--arrival-rate",
        type=float,
        default=5000.0,
        help="Poisson arrival intensity, tuners/second (0 = all at once)",
    )
    loadtest.add_argument(
        "--max-open",
        type=int,
        default=256,
        help="simultaneously open connections (fd throttle)",
    )
    loadtest.add_argument(
        "--slot-duration", type=float, default=0.0,
        help="station pacing, seconds per slot (0 = logical time)",
    )
    loadtest.add_argument("--loss", type=float, default=0.0)
    loadtest.add_argument("--corruption", type=float, default=0.0)
    loadtest.add_argument(
        "--policy", choices=("retry-parent", "next-cycle"), default=None
    )
    loadtest.add_argument("--max-cycles", type=int, default=8)
    loadtest.add_argument(
        "--check-parity",
        action="store_true",
        help="replay the trace through the in-process simulator and "
        "require exact access/tuning-time equality (lossless air only)",
    )
    loadtest.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_net.json loadtest record to PATH",
    )
    loadtest.add_argument(
        "--trace",
        dest="trace_prefix",
        default=None,
        metavar="PREFIX",
        help="write the fleet's JSONL event trace to PREFIX.live.jsonl "
        "and a lossless simulator replay of the same requests to "
        "PREFIX.sim.jsonl (diff them with 'obs diff')",
    )
    loadtest.add_argument(
        "--engine",
        choices=("fleet", "batch"),
        default="fleet",
        help="'fleet' runs the socket tuner fleet (default); 'batch' "
        "runs the identical request trace through the in-process "
        "repro.engine batch simulator instead (no sockets; "
        "--check-parity compares it walk-for-walk against the scalar "
        "protocol)",
    )
    _add_envelope_options(loadtest)

    cluster = commands.add_parser(
        "cluster",
        help="sharded multi-station cluster: partitioned planning, "
        "routing, refit, fleet loadtest (repro.cluster)",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )

    def add_cluster_options(sub: argparse.ArgumentParser) -> None:
        """Knobs shared by every cluster subcommand."""
        sub.add_argument("--items", type=int, default=32)
        sub.add_argument("--channels", type=int, default=3)
        sub.add_argument("--fanout", type=int, default=3)
        sub.add_argument(
            "--planner",
            default="meta",
            help="repro.planners registry name used per shard "
            "(default 'meta': the repro.approx cost-model dispatcher, "
            "restricted to wire-routable planners)",
        )
        sub.add_argument("--shards", type=int, default=2)
        sub.add_argument(
            "--partitioner",
            default="hash",
            help="repro.cluster.partition registry name "
            "(default 'hash'; also 'weight-balanced')",
        )
        sub.add_argument(
            "--refit-rounds",
            type=int,
            default=0,
            help="run the measuring refit loop for up to N rounds "
            "before serving/loadtesting (default 0 = off)",
        )

    cluster_plan = cluster_commands.add_parser(
        "plan",
        help="partition the catalog, plan every shard, print the table",
    )
    add_cluster_options(cluster_plan)

    cluster_serve = cluster_commands.add_parser(
        "serve", help="air every shard's program on its own station"
    )
    add_cluster_options(cluster_serve)
    cluster_serve.add_argument("--host", default="127.0.0.1")
    cluster_serve.add_argument(
        "--slot-duration",
        type=float,
        default=0.0,
        help="seconds per slot; 0 = logical time",
    )

    cluster_loadtest = cluster_commands.add_parser(
        "loadtest",
        help="routed tuner fleet across every shard, with per-shard "
        "accounting and parity gates",
    )
    add_cluster_options(cluster_loadtest)
    cluster_loadtest.add_argument("--tuners", type=int, default=200)
    cluster_loadtest.add_argument(
        "--sweep",
        default=None,
        metavar="COUNTS",
        help="comma-separated shard counts (e.g. 1,2,4) to loadtest "
        "in sequence; overrides --shards and records speedups",
    )
    cluster_loadtest.add_argument(
        "--arrival-rate",
        type=float,
        default=0.0,
        help="Poisson arrival intensity, tuners/second (0 = all at once)",
    )
    cluster_loadtest.add_argument("--max-open", type=int, default=256)
    cluster_loadtest.add_argument(
        "--slot-duration",
        type=float,
        default=0.0,
        help="station pacing, seconds per slot (0 = logical time)",
    )
    cluster_loadtest.add_argument(
        "--check-parity",
        action="store_true",
        help="per-shard simulator replay with exact-equality gate",
    )
    cluster_loadtest.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_cluster.json sweep record to PATH",
    )
    _add_envelope_options(cluster_loadtest)

    approx = commands.add_parser(
        "approx",
        help="approximation planners for million-item catalogs: ptas "
        "plan card, quality-vs-time frontier bench, meta-planner "
        "explain (repro.approx)",
    )
    approx_commands = approx.add_subparsers(
        dest="approx_command", required=True
    )

    def add_approx_options(sub: argparse.ArgumentParser) -> None:
        """The synthetic-catalog knobs every approx subcommand shares."""
        sub.add_argument(
            "--items",
            type=int,
            default=10_000,
            help="synthetic catalog size (default 10000)",
        )
        sub.add_argument("--channels", type=int, default=4)
        sub.add_argument("--fanout", type=int, default=3)
        sub.add_argument(
            "--theta",
            type=float,
            default=0.95,
            help="Zipf skew of the synthetic weights (default 0.95)",
        )

    approx_plan = approx_commands.add_parser(
        "plan",
        help="plan a synthetic Zipf catalog with one registry planner, "
        "print the plan card (cost, bound, groups, timing)",
    )
    add_approx_options(approx_plan)
    approx_plan.add_argument(
        "--method",
        default="ptas",
        help="repro.planners registry name (default 'ptas')",
    )

    approx_frontier = approx_commands.add_parser(
        "frontier",
        help="sweep catalog sizes, plan each with ptas/sorting/meta, "
        "record the quality-vs-time frontier (BENCH_approx.json)",
    )
    approx_frontier.add_argument(
        "--sizes",
        default="1000,10000",
        metavar="SIZES",
        help="comma-separated catalog sizes (default '1000,10000'; "
        "the committed baseline scale)",
    )
    approx_frontier.add_argument("--channels", type=int, default=4)
    approx_frontier.add_argument("--fanout", type=int, default=3)
    approx_frontier.add_argument("--theta", type=float, default=0.95)
    approx_frontier.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_approx.json frontier record to PATH",
    )
    _add_envelope_options(approx_frontier)

    approx_explain = approx_commands.add_parser(
        "explain",
        help="print the meta-planner's measured features and its "
        "decision for a catalog, without planning anything",
    )
    add_approx_options(approx_explain)
    approx_explain.add_argument(
        "--wire-safe",
        action="store_true",
        help="restrict the decision to wire-routable planners "
        "(what the cluster's stations require)",
    )

    sched = commands.add_parser(
        "sched",
        help="versioned schedule store: history, diffs, zero-downtime "
        "rollback, gc, bench and cutover loadtest (repro.sched)",
    )
    sched_commands = sched.add_subparsers(
        dest="sched_command", required=True
    )

    def add_store_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            dest="store_dir",
            required=True,
            metavar="DIR",
            help="schedule store directory (repro.sched.ScheduleStore)",
        )

    sched_log = sched_commands.add_parser(
        "log", help="the version log, oldest first"
    )
    add_store_option(sched_log)
    sched_log.add_argument(
        "--limit",
        type=int,
        default=0,
        help="show only the newest N versions (0 = all; default 0)",
    )

    sched_show = sched_commands.add_parser(
        "show", help="print one version's plan, integrity-verified"
    )
    add_store_option(sched_show)
    sched_show.add_argument(
        "--version",
        type=int,
        default=None,
        help="version to show (default: head)",
    )

    sched_diff = sched_commands.add_parser(
        "diff",
        help="structural delta between two versions' plan documents",
    )
    add_store_option(sched_diff)
    sched_diff.add_argument(
        "--from", dest="from_version", type=int, required=True,
        metavar="VERSION",
    )
    sched_diff.add_argument(
        "--to", dest="to_version", type=int, required=True,
        metavar="VERSION",
    )

    sched_rollback = sched_commands.add_parser(
        "rollback",
        help="republish an old version as the new head (append-only; a "
        "station serving with --store cuts over at its next cycle "
        "boundary)",
    )
    add_store_option(sched_rollback)
    sched_rollback.add_argument(
        "--to", dest="to_version", type=int, required=True,
        metavar="VERSION", help="version whose content becomes the head",
    )
    sched_rollback.add_argument(
        "--note", default="", help="free-form note stamped into the log"
    )

    sched_gc = sched_commands.add_parser(
        "gc",
        help="drop objects the version log does not reference "
        "(left-overs of interrupted publishes)",
    )
    add_store_option(sched_gc)

    sched_bench = sched_commands.add_parser(
        "bench",
        help="store micro-bench: publish/load/rollback timings and "
        "bytes-per-version, writing BENCH_sched.json via --json",
    )
    sched_bench.add_argument("--versions", type=int, default=40)
    sched_bench.add_argument("--items", type=int, default=24)
    sched_bench.add_argument("--channels", type=int, default=3)
    sched_bench.add_argument("--fanout", type=int, default=3)
    sched_bench.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="full-snapshot period in versions (default 8)",
    )
    sched_bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_sched.json record to PATH",
    )
    _add_envelope_options(sched_bench)

    sched_loadtest = sched_commands.add_parser(
        "loadtest",
        help="live cutover loadtest: a tuner fleet rides through a "
        "mid-walk replan and a rollback; exits non-zero unless frame "
        "accounting, zero-abandonment and byte-exact restore all hold",
    )
    sched_loadtest.add_argument("--tuners", type=int, default=200)
    sched_loadtest.add_argument("--items", type=int, default=24)
    sched_loadtest.add_argument("--channels", type=int, default=3)
    sched_loadtest.add_argument("--fanout", type=int, default=3)
    sched_loadtest.add_argument("--max-open", type=int, default=128)
    sched_loadtest.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_sched.json loadtest record to PATH",
    )
    sched_loadtest.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="record a span-traced JSONL of the run to PATH: the "
        "replan/publish/cutover spans and every walk's segment spans "
        "share one trace id per replan (view with 'obs spans')",
    )
    sched_loadtest.add_argument(
        "--postmortem-dir",
        default=None,
        metavar="DIR",
        help="attach an always-on flight recorder dumping postmortem "
        "bundles to DIR whenever an acceptance gate fails",
    )
    _add_envelope_options(sched_loadtest)

    engine = commands.add_parser(
        "engine",
        help="vectorised batch walk engine: bench and differential gate "
        "(repro.engine)",
    )
    engine_commands = engine.add_subparsers(
        dest="engine_command", required=True
    )
    engine_bench = engine_commands.add_parser(
        "bench",
        help="batch-vs-scalar throughput suite with built-in "
        "bit-identity gates, writing BENCH_engine.json via --json",
    )
    engine_bench.add_argument("--items", type=int, default=24)
    engine_bench.add_argument("--channels", type=int, default=3)
    engine_bench.add_argument("--fanout", type=int, default=3)
    engine_bench.add_argument("--planner", default="sorting")
    engine_bench.add_argument(
        "--walks",
        type=int,
        default=200_000,
        help="trace length for the batch paths (default 200000)",
    )
    engine_bench.add_argument(
        "--sample",
        type=int,
        default=2000,
        help="scalar-walk sample for the timing baseline and the "
        "per-walk differential gate (default 2000)",
    )
    engine_bench.add_argument("--loss", type=float, default=0.05)
    engine_bench.add_argument("--corruption", type=float, default=0.01)
    engine_bench.add_argument("--repeats", type=int, default=3)
    engine_bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the BENCH_engine.json record to PATH",
    )
    _add_envelope_options(engine_bench)

    obs = commands.add_parser(
        "obs",
        help="trace tooling: timelines, diffs, latency attribution, "
        "causal span trees, postmortem bundles, and the "
        "bench-regression sentinel",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    timeline = obs_commands.add_parser(
        "timeline",
        help="reconstruct the per-(channel, slot) view of one trace",
    )
    timeline.add_argument("trace", help="JSONL trace file")
    timeline.add_argument(
        "--channel", type=int, default=None, help="show one channel only"
    )
    timeline.add_argument(
        "--limit",
        type=int,
        default=40,
        help="max slot cells to print (0 = all; default 40)",
    )
    diff = obs_commands.add_parser(
        "diff",
        help="compare two traces; exit 1 and name the first divergent "
        "slot when they disagree",
    )
    diff.add_argument("trace_a", help="JSONL trace file (side A)")
    diff.add_argument("trace_b", help="JSONL trace file (side B)")
    diff.add_argument("--label-a", default="A", help="display name of side A")
    diff.add_argument("--label-b", default="B", help="display name of side B")
    diff.add_argument(
        "--limit",
        type=int,
        default=10,
        help="max divergent cells to print (default 10)",
    )
    attrib = obs_commands.add_parser(
        "attrib",
        help="fold a trace into per-walk phase breakdowns "
        "(probe/descent/hop/retry/slack) that sum exactly to each "
        "walk's access time; exit 1 if any walk violates exactness",
    )
    attrib.add_argument("trace", help="JSONL trace file")
    attrib.add_argument(
        "--slowest",
        type=int,
        default=5,
        help="how many of the slowest walks to break down individually "
        "(0 = none; default 5)",
    )
    spans = obs_commands.add_parser(
        "spans",
        help="reconstruct causal span trees from a trace (replan -> "
        "store publish -> station cutover -> walk segments) and "
        "reconcile segment durations against the attribution layer; "
        "exit 1 on a containment or reconciliation violation",
    )
    spans.add_argument("trace", help="JSONL trace file")
    spans.add_argument(
        "--trace-id",
        type=lambda v: int(v, 0),
        default=None,
        help="show one trace only (decimal or 0x-hex id)",
    )
    spans.add_argument(
        "--limit",
        type=int,
        default=20,
        help="max walk reconciliation rows to print (0 = all; "
        "default 20)",
    )
    postmortem = obs_commands.add_parser(
        "postmortem",
        help="print a flight-recorder bundle: the causal span chain "
        "ending at the trigger, plus each component ring's summary",
    )
    postmortem.add_argument("bundle", help="postmortem-*.json bundle file")
    postmortem.add_argument(
        "--tree",
        action="store_true",
        help="also print the bundle's full span trees",
    )
    regress = obs_commands.add_parser(
        "regress",
        help="gate a BENCH_all.json candidate against a committed "
        "baseline trajectory; exit 1 naming the first regressed metric",
    )
    regress.add_argument(
        "--baseline",
        required=True,
        metavar="PATH",
        help="JSONL history file whose last entry is the baseline",
    )
    regress.add_argument(
        "--candidate",
        default="BENCH_all.json",
        metavar="PATH",
        help="merged bench record to judge (default BENCH_all.json)",
    )
    regress.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="relative worse-ward tolerance on quality metrics "
        "(default 0.1)",
    )
    regress.add_argument(
        "--timing-tolerance",
        type=float,
        default=None,
        help="also gate machine-dependent timing metrics at this "
        "relative tolerance (default: tracked but ungated)",
    )
    regress.add_argument(
        "--append",
        dest="append_path",
        default=None,
        metavar="PATH",
        help="also append the candidate's history entry to this "
        "JSONL trajectory file",
    )
    regress.add_argument(
        "--bootstrap",
        action="store_true",
        help="if the baseline file does not exist yet, seed it with "
        "the candidate's entry and exit 0",
    )
    regress.add_argument(
        "--allow-config-mismatch",
        action="store_true",
        help="compare runs even when their config fingerprints differ "
        "(normally a hard error: different scales are incomparable)",
    )

    sensitivity = commands.add_parser(
        "sensitivity", help="fanout and skew sensitivity sweeps"
    )
    sensitivity.add_argument("--catalog", type=int, default=12)
    sensitivity.add_argument("--trials", type=int, default=8)

    solve_cmd = commands.add_parser(
        "solve", help="allocate a user-supplied index tree (JSON)"
    )
    solve_cmd.add_argument(
        "--input",
        required=True,
        help="path to a broadcast-alloc/tree JSON document",
    )
    solve_cmd.add_argument("--channels", type=int, default=1)
    solve_cmd.add_argument(
        "--planner",
        default="budgeted",
        help="repro.planners registry name of the allocation strategy "
        "(default 'budgeted': exact within --budget, sorting beyond)",
    )
    solve_cmd.add_argument(
        "--budget",
        type=int,
        default=500_000,
        help="exact-search state budget before the sorting heuristic "
        "takes over (only meaningful for the 'budgeted' planner)",
    )
    solve_cmd.add_argument(
        "--output",
        default=None,
        help="optional path to write the solved schedule JSON to",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)

    if args.command == "demo":
        tree = paper_example_tree()
        print("Fig. 1 index tree:")
        print(tree.to_ascii())
        for k in range(1, args.channels + 1):
            result = solve(tree, channels=k)
            print(
                f"\n{k} channel(s): optimal data wait = {result.cost:.4f} "
                f"(method: {result.method})"
            )
            print(result.schedule.to_ascii())
        return 0

    if args.command == "table1":
        fanouts = tuple(range(2, args.max_fanout + 1))
        report = run_table1(
            fanouts=fanouts, seed=args.seed, max_enum_p12=args.max_enum_p12
        )
        print(format_table1(report))
        return 0

    if args.command == "fig14":
        print(format_fig14(run_fig14(trials=args.trials, seed=args.seed)))
        return 0

    if args.command == "compare":
        results = [
            compare_methods(
                rng, workload, data_count=args.data_count, trials=args.trials
            )
            for workload in ("zipf", "normal")
        ]
        print(format_method_comparison(results))
        return 0

    if args.command == "channels":
        print(format_channel_scaling(channel_scaling(rng, fanout=args.fanout)))
        return 0

    if args.command == "ablation":
        print(format_pruning_ablation(pruning_ablation(rng)))
        return 0

    if args.command == "bench":
        from .bench import format_bench, run_bench, write_bench_json

        if args.repeats < 1:
            print("error: --repeats must be >= 1", file=sys.stderr)
            return 2
        if args.json_path:
            record = write_bench_json(
                args.json_path,
                repeats=args.repeats,
                rev=args.rev,
                timestamp=args.timestamp,
            )
        else:
            record = run_bench(repeats=args.repeats)
        print(format_bench(record))
        if args.json_path:
            print(f"perf record written to {args.json_path}")
        checks = record["aggregate"]["checks"]
        return 0 if all(checks.values()) else 1

    if args.command == "solve":
        import json

        from .broadcast.metrics import (
            expected_access_time,
            expected_tuning_time,
        )
        from .io.json_io import save_schedule, tree_from_dict
        from .planners import plan

        with open(args.input) as handle:
            tree = tree_from_dict(json.load(handle))
        options = (
            {"budget": args.budget} if args.planner == "budgeted" else {}
        )
        result = plan(
            tree, args.channels, method=args.planner, **options
        )
        schedule = result.schedule
        fell_back = result.stats.get("fell_back")
        note = ""
        if fell_back is True:
            note = f" (exact search exceeded {args.budget} states)"
        elif fell_back is False:
            note = " (exact)"
        print(f"method: {result.method}{note}")
        print(schedule.to_ascii())
        print(f"data wait            = {schedule.data_wait():.4f} slots")
        print(f"expected access time = {expected_access_time(schedule):.4f}")
        print(f"expected tuning time = {expected_tuning_time(schedule):.4f}")
        if args.output:
            save_schedule(schedule, args.output)
            print(f"schedule written to {args.output}")
        return 0

    if args.command == "faults":
        import json

        from .analysis.faults_sweep import (
            format_fault_sweep,
            run_fault_sweep,
        )
        from .client.protocol import RecoveryPolicy

        methods = tuple(
            name.strip() for name in args.planners.split(",") if name.strip()
        )
        losses = tuple(
            float(token)
            for token in args.losses.split(",")
            if token.strip()
        )
        if 0.0 not in losses:
            losses = (0.0, *losses)
        report = run_fault_sweep(
            methods=methods,
            losses=losses,
            channels=args.channels,
            requests=args.requests,
            seed=args.seed,
            corruption=args.corruption,
            burst=args.burst,
            policy=RecoveryPolicy(
                mode=args.policy, max_cycles=args.max_cycles
            ),
        )
        print(format_fault_sweep(report))
        if args.json_path:
            with open(args.json_path, "w") as handle:
                json.dump(report.to_dict(), handle, indent=2)
                handle.write("\n")
            print(f"sweep record written to {args.json_path}")
        if not report.differential_ok:
            print(
                "error: loss=0 recovery does not reproduce the lossless "
                "protocol",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.command == "bench-server":
        from .server.bench import (
            format_server_bench,
            run_server_bench,
            write_server_bench_json,
        )

        if args.json_path:
            record = write_server_bench_json(
                args.json_path, rev=args.rev, timestamp=args.timestamp
            )
        else:
            record = run_server_bench()
        print(format_server_bench(record))
        if args.json_path:
            print(f"perf record written to {args.json_path}")
        checks = record["aggregate"]["checks"]
        return 0 if all(checks.values()) else 1

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "tune":
        return _cmd_tune(args)

    if args.command == "loadtest":
        if args.engine == "batch":
            return _cmd_loadtest_batch(args)
        return _cmd_loadtest(args)

    if args.command == "cluster":
        return _cmd_cluster(args)

    if args.command == "approx":
        return _cmd_approx(args)

    if args.command == "sched":
        return _cmd_sched(args)

    if args.command == "engine":
        return _cmd_engine(args)

    if args.command == "obs":
        return _cmd_obs(args)

    if args.command == "bench-merge":
        return _cmd_bench_merge(args)

    if args.command == "sensitivity":
        from .analysis.sensitivity import (
            fanout_sensitivity,
            format_fanout_sensitivity,
            format_skew_sensitivity,
            skew_sensitivity,
        )
        from .workloads.catalogs import stock_catalog

        items = stock_catalog(rng, count=args.catalog)
        print(format_fanout_sensitivity(fanout_sensitivity(items)))
        print()
        print(
            format_skew_sensitivity(
                skew_sensitivity(rng, trials=args.trials)
            )
        )
        return 0

    if args.command == "spaces":
        from .core.problem import AllocationProblem
        from .core.render import render_data_tree, render_topological_tree

        tree = paper_example_tree()
        print(
            f"Reduced {args.channels}-channel topological tree of the "
            "Fig. 1 example:"
        )
        print(
            render_topological_tree(AllocationProblem(tree, args.channels))
        )
        print("\nData tree with Property 4 marks (x = pruned), Fig. 12 style:")
        print(
            render_data_tree(AllocationProblem(tree, 1), annotate=True)
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


# ---------------------------------------------------------------------------
# repro.net commands
# ---------------------------------------------------------------------------

def _net_faults(args):
    """FaultConfig from --loss/--corruption flags, or None for clean air."""
    if args.loss == 0.0 and args.corruption == 0.0:
        return None
    from .faults import FaultConfig

    return FaultConfig(
        loss=args.loss, corruption=args.corruption, seed=args.seed
    )


def _net_policy(mode: str | None, max_cycles: int):
    if mode is None:
        return None
    from .client.protocol import RecoveryPolicy

    return RecoveryPolicy(mode=mode, max_cycles=max_cycles)


def _cmd_serve(args) -> int:
    import asyncio

    from .broadcast.pointers import compile_program
    from .net import BroadcastStation, build_demo_plan
    from .perf import PerfRecorder

    perf = PerfRecorder()
    store = None
    version = 0
    if args.store_dir:
        from .sched import ScheduleStore

        store = ScheduleStore(args.store_dir, perf=perf)
        head = store.head
        if head is None:
            plan = build_demo_plan(
                items=args.items,
                channels=args.channels,
                fanout=args.fanout,
                planner=args.planner,
                seed=args.seed,
            )
            head = store.publish(plan, note="initial plan (serve)")
            print(f"store seeded: version 1 published to {args.store_dir}")
        else:
            plan = store.load(head.version)
            print(
                f"store head: version {head.version} "
                f"({head.note or 'no note'})"
            )
        version = head.version
        program = compile_program(plan.schedule)
    else:
        plan = build_demo_plan(
            items=args.items,
            channels=args.channels,
            fanout=args.fanout,
            planner=args.planner,
            seed=args.seed,
        )
        program = compile_program(plan.schedule)
    station = BroadcastStation(
        program,
        faults=_net_faults(args),
        slot_duration=args.slot_duration,
        host=args.host,
        port=args.port,
        transport=args.transport,
        perf=perf,
        schedule_version=version,
    )

    async def follow_store() -> None:
        # The log is re-read from disk on every head access, so a
        # version published by another process — a replan, or a
        # ``sched rollback`` from another shell — shows up here and is
        # put on air at the station's next cycle boundary. Walks in
        # flight see the version stamp change and restart from the
        # root; none are dropped.
        while True:
            await asyncio.sleep(max(args.poll_interval, 0.05))
            head = store.head
            if head is None or head.version <= station.version:
                continue
            result = store.load(head.version)
            slot = station.publish(
                compile_program(result.schedule), version=head.version
            )
            print(
                f"cutover: version {head.version} "
                f"({head.note or 'no note'}) activates at slot {slot}"
            )

    async def air_forever() -> None:
        async with station:
            print(
                f"airing {args.channels} channel(s), cycle length "
                f"{program.cycle_length}, on {args.transport}://"
                f"{station.host}:{station.port} (Ctrl-C to stop)"
            )
            follower = (
                asyncio.ensure_future(follow_store())
                if store is not None
                else None
            )
            try:
                if args.metrics_port is not None:
                    from .obs import (
                        MetricsRegistry,
                        ObsHttpServer,
                        declare_perf_baseline,
                    )

                    registry = MetricsRegistry()
                    declare_perf_baseline(registry)

                    def health() -> dict:
                        return {
                            "status": "ok",
                            "transport": args.transport,
                            "channels": station.channels,
                            "cycle_length": station.cycle_length,
                            "station_port": station.port,
                            "schedule_version": station.version,
                        }

                    async with ObsHttpServer(
                        registry,
                        collect=lambda reg: reg.absorb_perf(perf),
                        health=health,
                        host=args.host,
                        port=args.metrics_port,
                    ) as metrics:
                        print(
                            "metrics on http://"
                            f"{args.host}:{metrics.port}/metrics"
                        )
                        await asyncio.Event().wait()
                else:
                    await asyncio.Event().wait()
            finally:
                # Teardown order matters: the poller must stop and the
                # store snapshot must be on disk *before* the station's
                # async-with closes the sockets — an operator's Ctrl-C
                # leaves the store restorable, never mid-write.
                if follower is not None:
                    follower.cancel()
                if store is not None:
                    _flush_serve_state(store, station, perf)

    try:
        asyncio.run(air_forever())
    except KeyboardInterrupt:
        # The operator's Ctrl-C: asyncio.run has already cancelled the
        # serving tasks and run the station's async-with teardown (the
        # finally above flushed the store first), so sockets are closed
        # — print the counters and exit cleanly.
        pass
    except OSError as error:
        # Bind failure (port already in use, bad address): a usage
        # error the operator can fix, not a traceback.
        print(f"error: cannot serve: {error}", file=sys.stderr)
        return 1
    counters = perf.snapshot().get("counters", {})
    print("station stopped; stats flushed:")
    for name in sorted(counters):
        if name.startswith(("net.station.", "sched.")):
            print(f"  {name} = {counters[name]}")
    return 0


def _flush_serve_state(store, station, perf) -> None:
    """Persist the serving snapshot (version + counters) to the store."""
    counters = perf.snapshot().get("counters", {})
    store.save_state(
        {
            "serving_version": station.version,
            "frames_sent": counters.get("net.station.frames_sent", 0),
            "cycles_aired": counters.get("net.station.cycles", 0),
            "publishes": counters.get("sched.publishes", 0),
        }
    )


def _cmd_tune(args) -> int:
    import asyncio

    from .exceptions import ReproError
    from .net import TunerClient

    async def one_walk():
        async with TunerClient(
            args.host,
            args.port,
            policy=_net_policy(args.policy, args.max_cycles),
        ) as tuner:
            return await tuner.fetch(args.key, args.tune_slot)

    try:
        result = asyncio.run(one_walk())
    except OSError as error:
        print(
            f"error: cannot reach station at {args.host}:{args.port}: "
            f"{error}",
            file=sys.stderr,
        )
        return 1
    except ReproError as error:
        # Protocol violations and failed lookups: report, don't crash.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if result.abandoned:
        print(
            f"abandoned after {result.cycles_spent} cycle(s): "
            f"{result.lost_buckets} lost, {result.corrupt_buckets} corrupt"
        )
        return 1
    print(f"key              = {result.key}")
    print(f"payload          = {result.payload[:40]!r}")
    print(f"access time      = {result.access_time} slots")
    print(f"tuning time      = {result.tuning_time} buckets")
    print(f"channel switches = {result.channel_switches}")
    if result.retries:
        print(
            f"recovered        = {result.lost_buckets} lost + "
            f"{result.corrupt_buckets} corrupt via {result.retries} retries"
        )
    return 0


def _cmd_engine(args) -> int:
    from .engine import (
        format_engine_bench,
        run_engine_bench,
        write_engine_bench_json,
    )

    if args.engine_command == "bench":
        if args.repeats < 1 or args.walks < 1:
            print(
                "error: --walks and --repeats must be >= 1", file=sys.stderr
            )
            return 2
        record = run_engine_bench(
            items=args.items,
            channels=args.channels,
            fanout=args.fanout,
            planner=args.planner,
            walks=args.walks,
            sample=args.sample,
            loss=args.loss,
            corruption=args.corruption,
            seed=args.seed,
            repeats=args.repeats,
        )
        if args.json_path:
            record = write_engine_bench_json(
                args.json_path,
                record,
                rev=args.rev,
                timestamp=args.timestamp,
            )
        print(format_engine_bench(record))
        if args.json_path:
            print(f"perf record written to {args.json_path}")
        checks = record["aggregate"]["checks"]
        if not all(checks.values()):
            failed = [name for name, ok in checks.items() if not ok]
            print(
                f"error: engine bench checks failed: {', '.join(failed)}",
                file=sys.stderr,
            )
            return 1
        return 0
    raise AssertionError(f"unhandled engine command {args.engine_command}")


def _cmd_loadtest_batch(args) -> int:
    """``loadtest --engine batch``: the trace, minus the sockets.

    Runs the *identical* seeded request trace the fleet would run, but
    through :func:`repro.engine.run_batch` in-process. ``--check-parity``
    replays every walk through the scalar protocol (lossless or
    recovering, matching the air) and requires record-for-record
    equality — unlike the fleet, parity here works under faults too,
    because both sides draw from the same seeded outcome streams.
    """
    import json
    from time import perf_counter

    from .bench_envelope import stamp_record
    from .client.protocol import object_walk, recovering_walk
    from .engine import compile_dense, run_batch
    from .net import build_demo_program, make_request_trace

    program = build_demo_program(
        items=args.items,
        channels=args.channels,
        fanout=args.fanout,
        planner=args.planner,
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    trace = make_request_trace(program, args.tuners, rng)
    dense = compile_dense(program)
    ids = np.array([dense.data_index(key) for key, _ in trace])
    slots = np.array([slot for _, slot in trace])
    faults = _net_faults(args)
    policy = _net_policy(args.policy, args.max_cycles)

    started = perf_counter()
    batch = run_batch(
        dense,
        ids,
        slots,
        faults=faults,
        recovery=policy if faults is not None else None,
    )
    seconds = perf_counter() - started
    walks_per_second = len(batch) / seconds if seconds > 0 else 0.0
    summary = batch.summarise()

    parity_exact = None
    if args.check_parity:
        leaves = program.schedule.tree.data_nodes()
        records = batch.to_records()
        if faults is None:
            scalar = [
                object_walk(program, leaves[int(d)], int(s))
                for d, s in zip(ids, slots)
            ]
        else:
            scalar = [
                recovering_walk(
                    program, leaves[int(d)], int(s),
                    faults=faults, policy=policy,
                )
                for d, s in zip(ids, slots)
            ]
        parity_exact = records == scalar

    abandoned = getattr(summary, "abandoned", 0)
    print(
        f"{len(batch)} walks (batch engine): "
        f"{len(batch) - abandoned} completed, {abandoned} abandoned "
        f"in {seconds:.4f}s ({walks_per_second:.0f} walks/s)"
    )
    print(
        f"access time  mean {summary.mean_access_time:.3f}   "
        f"tuning time  mean {summary.mean_tuning_time:.3f}"
    )
    if faults is not None:
        print(
            f"faults: {summary.lost_buckets} lost, "
            f"{summary.corrupt_buckets} corrupt, {summary.retries} retries"
        )
    if parity_exact is not None:
        print(
            "parity vs scalar protocol: "
            + ("EXACT" if parity_exact else "MISMATCH")
        )
    if args.json_path:
        checks = {}
        if parity_exact is not None:
            checks["parity_exact"] = parity_exact
        record = {
            "suite": "engine-loadtest",
            "config": {
                "items": args.items,
                "channels": args.channels,
                "fanout": args.fanout,
                "planner": args.planner,
                "tuners": args.tuners,
                "loss": args.loss,
                "corruption": args.corruption,
                "policy": args.policy,
                "max_cycles": args.max_cycles,
                "check_parity": args.check_parity,
                "seed": args.seed,
            },
            "result": {
                "walks": len(batch),
                "abandoned": abandoned,
                "seconds": seconds,
                "walks_per_second": walks_per_second,
            },
            "aggregate": {
                "mean_access_time": summary.mean_access_time,
                "mean_tuning_time": summary.mean_tuning_time,
                "walks_per_second": walks_per_second,
                "checks": checks,
            },
        }
        stamped = stamp_record(
            record, rev=args.rev, timestamp=args.timestamp
        )
        with open(args.json_path, "w") as handle:
            json.dump(stamped, handle, indent=2)
            handle.write("\n")
        print(f"loadtest record written to {args.json_path}")
    if parity_exact is False:
        print(
            "error: batch engine does not reproduce the scalar protocol",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadtest(args) -> int:
    import asyncio

    from .exceptions import ReproError
    from .net import (
        build_demo_program,
        make_request_trace,
        run_loadtest,
        trace_simulator,
        write_loadtest_json,
    )

    faults = _net_faults(args)
    if args.check_parity and faults is not None:
        print(
            "error: --check-parity requires lossless air "
            "(drop --loss/--corruption)",
            file=sys.stderr,
        )
        return 2
    program = build_demo_program(
        items=args.items,
        channels=args.channels,
        fanout=args.fanout,
        planner=args.planner,
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    trace = None
    tracer = None
    if args.trace_prefix:
        from .obs.events import JsonlTracer

        # Pre-draw the request trace from the same generator state the
        # harness would have used, so measured numbers are unchanged by
        # tracing; the identical trace then feeds the simulator replay.
        trace = make_request_trace(program, args.tuners, rng)
        tracer = JsonlTracer(f"{args.trace_prefix}.live.jsonl")
    try:
        report = asyncio.run(
            run_loadtest(
                program,
                tuners=args.tuners,
                rng=rng,
                trace=trace,
                faults=faults,
                policy=_net_policy(args.policy, args.max_cycles),
                slot_duration=args.slot_duration,
                arrival_rate=args.arrival_rate,
                max_open=args.max_open,
                check_parity=args.check_parity,
                tracer=tracer,
            )
        )
    except OSError as error:
        # A station that died (or never bound) mid-run is an
        # operational failure, not a stack trace — same contract as
        # `tune` against an unreachable station.
        print(f"error: station unreachable mid-run: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace_prefix:
        from .obs.events import JsonlTracer

        with JsonlTracer(f"{args.trace_prefix}.sim.jsonl") as sim_tracer:
            trace_simulator(program, trace, tracer=sim_tracer)
        print(f"live trace written to {args.trace_prefix}.live.jsonl")
        print(f"simulator trace written to {args.trace_prefix}.sim.jsonl")
    print(
        f"{report.tuners} tuners: {report.completed} completed, "
        f"{report.abandoned} abandoned in {report.wall_seconds:.2f}s "
        f"({report.walks_per_second:.0f} walks/s)"
    )
    print(
        f"access time  mean {report.mean_access_time:.3f}  "
        f"p50 {report.access_percentiles['p50']:.0f}  "
        f"p90 {report.access_percentiles['p90']:.0f}  "
        f"p99 {report.access_percentiles['p99']:.0f}  "
        f"max {report.access_percentiles['max']:.0f}"
    )
    print(
        f"tuning time  mean {report.mean_tuning_time:.3f}  "
        f"p50 {report.tuning_percentiles['p50']:.0f}  "
        f"p90 {report.tuning_percentiles['p90']:.0f}  "
        f"p99 {report.tuning_percentiles['p99']:.0f}  "
        f"max {report.tuning_percentiles['max']:.0f}"
    )
    print(
        f"frames: {report.frames_answered} aired, {report.frames_read} "
        f"read, {report.unaccounted_frames} unaccounted"
    )
    if faults is not None:
        print(
            f"faults: {report.lost_buckets} lost, "
            f"{report.corrupt_buckets} corrupt, {report.retries} retries"
        )
    if report.parity is not None:
        verdict = "EXACT" if report.parity["exact_match"] else "MISMATCH"
        print(
            f"parity vs simulator: {verdict} "
            f"(fleet access {report.parity['fleet_mean_access_time']:.4f} "
            f"vs {report.parity['simulator_mean_access_time']:.4f}, "
            f"tuning {report.parity['fleet_mean_tuning_time']:.4f} "
            f"vs {report.parity['simulator_mean_tuning_time']:.4f})"
        )
    if args.json_path:
        config = {
            "items": args.items,
            "channels": args.channels,
            "fanout": args.fanout,
            "planner": args.planner,
            "tuners": args.tuners,
            "arrival_rate": args.arrival_rate,
            "max_open": args.max_open,
            "slot_duration": args.slot_duration,
            "loss": args.loss,
            "corruption": args.corruption,
            "check_parity": args.check_parity,
            "seed": args.seed,
        }
        write_loadtest_json(
            args.json_path,
            report,
            config,
            rev=args.rev,
            timestamp=args.timestamp,
        )
        print(f"loadtest record written to {args.json_path}")
    ok = report.accounting_ok and report.parity_ok
    if not report.accounting_ok:
        print(
            f"error: {report.unaccounted_frames} unaccounted frames",
            file=sys.stderr,
        )
    if not report.parity_ok:
        print(
            "error: socket fleet does not reproduce the in-process "
            "simulator",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _cluster_catalog(items: int, seed: int) -> list[tuple[str, float]]:
    """The demo catalog every cluster subcommand shares.

    Same shape as :func:`repro.net.harness.build_demo_program`'s input
    (Zipf-weighted ``K%03d`` keys), so a 1-shard cluster airs the same
    catalog the single-station commands do.
    """
    from .workloads.weights import zipf_weights

    rng = np.random.default_rng(seed)
    labels = [f"K{index:03d}" for index in range(items)]
    return list(zip(labels, (float(w) for w in zipf_weights(rng, items))))


def _build_cluster(args, shards: int):
    from .cluster import StationCluster

    return StationCluster(
        _cluster_catalog(args.items, args.seed),
        shards,
        partitioner=args.partitioner,
        planner=args.planner,
        channels=args.channels,
        fanout=args.fanout,
        seed=args.seed,
    )


def _print_cluster_table(cluster) -> None:
    header = (
        f"{'shard':>5} {'keys':>5} {'load':>10} {'cycle':>6} "
        f"{'plan cost':>10} {'measured':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in cluster.shard_rows():
        measured = (
            f"{row['measured_cost']:.3f}"
            if row["measured_cost"] is not None
            else "-"
        )
        print(
            f"{row['shard']:>5} {row['keys']:>5} {row['load']:>10.3f} "
            f"{row['cycle_length']:>6} {row['planner_cost']:>10.4f} "
            f"{measured:>9}"
        )


def _cmd_cluster(args) -> int:
    if args.cluster_command == "plan":
        return _cmd_cluster_plan(args)
    if args.cluster_command == "serve":
        return _cmd_cluster_serve(args)
    if args.cluster_command == "loadtest":
        return _cmd_cluster_loadtest(args)
    raise AssertionError(
        f"unhandled cluster command {args.cluster_command!r}"
    )


def _cmd_cluster_plan(args) -> int:
    from .exceptions import ReproError

    try:
        cluster = _build_cluster(args, args.shards)
        if args.refit_rounds > 0:
            report = cluster.refit(max_rounds=args.refit_rounds)
        else:
            report = None
            cluster.measure()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"{args.shards} shard(s), partitioner {args.partitioner!r}, "
        f"planner {args.planner!r}"
    )
    _print_cluster_table(cluster)
    print(f"aggregate expected access time = {cluster.aggregate_cost():.4f}")
    if report is not None:
        print(
            f"refit: {report.initial:.4f} -> {report.final:.4f} over "
            f"{len(report.rounds)} round(s), {cluster.router.moves} key "
            "move(s)"
        )
        for round_ in report.rounds:
            verdict = "accepted" if round_.accepted else "reverted"
            print(
                f"  moved {len(round_.moved)} key(s) shard "
                f"{round_.from_shard} -> {round_.to_shard}: "
                f"{round_.before:.4f} -> {round_.after:.4f} ({verdict})"
            )
    return 0


def _cmd_cluster_serve(args) -> int:
    import asyncio

    from .cluster import serve_cluster
    from .exceptions import ReproError

    try:
        cluster = _build_cluster(args, args.shards)
        if args.refit_rounds > 0:
            cluster.refit(max_rounds=args.refit_rounds)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    async def air_forever() -> None:
        async with serve_cluster(
            cluster,
            host=args.host,
            slot_duration=args.slot_duration,
        ):
            for shard in range(cluster.shards):
                host, port = cluster.endpoints[shard]
                plan = cluster.plans[shard]
                print(
                    f"shard {shard}: {len(plan.keys)} keys, cycle "
                    f"{plan.cycle_length}, on tcp://{host}:{port}"
                )
            print("cluster up (Ctrl-C to stop)")
            await asyncio.Event().wait()

    try:
        asyncio.run(air_forever())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: cannot serve cluster: {error}", file=sys.stderr)
        return 1
    print("cluster stopped")
    return 0


def _cmd_cluster_loadtest(args) -> int:
    from .cluster import run_cluster_sweep, write_cluster_bench_json
    from .exceptions import ReproError

    if args.sweep:
        try:
            counts = [
                int(token)
                for token in args.sweep.split(",")
                if token.strip()
            ]
        except ValueError:
            print(
                f"error: --sweep must be comma-separated shard counts, "
                f"got {args.sweep!r}",
                file=sys.stderr,
            )
            return 2
    else:
        counts = [args.shards]
    try:
        results = run_cluster_sweep(
            _cluster_catalog(args.items, args.seed),
            counts,
            tuners=args.tuners,
            partitioner=args.partitioner,
            planner=args.planner,
            channels=args.channels,
            fanout=args.fanout,
            seed=args.seed,
            refit_rounds=args.refit_rounds,
            slot_duration=args.slot_duration,
            arrival_rate=args.arrival_rate,
            max_open=args.max_open,
            check_parity=args.check_parity,
        )
    except OSError as error:
        # One unreachable/dead shard station fails the whole run with
        # a one-line verdict, mirroring `tune`/`loadtest`.
        print(f"error: shard unreachable mid-run: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for count, report in sorted(results.items()):
        unaccounted = sum(
            shard["unaccounted_frames"]
            for shard in report.per_shard.values()
        )
        print(
            f"{count} shard(s): {report.completed} completed, "
            f"{report.abandoned} abandoned in {report.wall_seconds:.2f}s "
            f"({report.aggregate_walks_per_second:.0f} walks/s aggregate, "
            f"mean access {report.mean_access_time:.3f}, "
            f"{unaccounted} unaccounted frames)"
        )
    record = None
    config = {
        "items": args.items,
        "channels": args.channels,
        "fanout": args.fanout,
        "planner": args.planner,
        "partitioner": args.partitioner,
        "shard_counts": counts,
        "tuners": args.tuners,
        "refit_rounds": args.refit_rounds,
        "arrival_rate": args.arrival_rate,
        "max_open": args.max_open,
        "slot_duration": args.slot_duration,
        "check_parity": args.check_parity,
        "seed": args.seed,
    }
    if args.json_path:
        record = write_cluster_bench_json(
            args.json_path,
            results,
            config,
            rev=args.rev,
            timestamp=args.timestamp,
        )
        print(f"cluster record written to {args.json_path}")
    else:
        record = write_cluster_bench_json(
            "/dev/null", results, config
        )
    speedups = record["aggregate"]["speedups"]
    for count, speedup in sorted(speedups.items(), key=lambda kv: int(kv[0])):
        print(f"speedup at {count} shards vs 1: {speedup:.2f}x")
    checks = record["aggregate"]["checks"]
    failed = sorted(name for name, ok in checks.items() if not ok)
    for name in failed:
        print(f"error: cluster check failed: {name}", file=sys.stderr)
    return 0 if not failed else 1


def _approx_catalog(
    items: int, theta: float, seed: int
) -> tuple[list[str], list[float]]:
    """A sorted synthetic catalog with Zipf weights, like the bench uses."""
    import numpy as np

    from .workloads.weights import zipf_weights

    rng = np.random.default_rng(seed + items)
    width = max(7, len(str(items)))
    labels = [f"d{i:0{width}d}" for i in range(items)]
    weights = [float(w) for w in zipf_weights(rng, items, theta=theta)]
    return labels, weights


def _cmd_approx(args) -> int:
    if args.approx_command == "plan":
        return _cmd_approx_plan(args)
    if args.approx_command == "frontier":
        return _cmd_approx_frontier(args)
    if args.approx_command == "explain":
        return _cmd_approx_explain(args)
    raise AssertionError(
        f"unhandled approx command {args.approx_command!r}"
    )


def _cmd_approx_plan(args) -> int:
    import time

    from .exceptions import ReproError
    from .perf import PerfRecorder
    from .planners import plan_catalog

    labels, weights = _approx_catalog(args.items, args.theta, args.seed)
    perf = PerfRecorder()
    started = time.perf_counter()
    try:
        result = plan_catalog(
            labels,
            weights,
            args.channels,
            method=args.method,
            fanout=args.fanout,
            perf=perf,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    print(
        f"{args.items} item(s), {args.channels} channel(s), "
        f"Zipf theta={args.theta}, planner {result.method!r}"
    )
    print(f"data_wait = {result.cost:.4f} ({elapsed:.2f}s)")
    stats = result.stats or {}
    if "quality_bound" in stats:
        print(
            f"a-priori bound = {stats['quality_bound']:.4f} "
            f"(<= {stats['quality_ratio']:.2f}x the data-wait lower "
            f"bound {stats['lower_bound']:.4f})"
        )
        for group in stats["groups"]:
            print(
                f"  group: {group['items']} item(s) from "
                f"{len(group['classes'])} class(es) on {group['channels']} "
                f"channel(s), depth {group['depth']}, "
                f"{group['slots']} slot(s), weight {group['weight']:.1f}"
            )
    meta = stats.get("meta")
    if meta is not None:
        print(
            f"meta decision: {meta['method']!r} ({meta['reason']})"
            + (" [fallback]" if meta["fell_back"] else "")
        )
    return 0


def _cmd_approx_frontier(args) -> int:
    from .approx import run_frontier_bench, write_approx_bench_json

    try:
        sizes = tuple(
            int(piece) for piece in args.sizes.split(",") if piece.strip()
        )
    except ValueError:
        print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 1
    if not sizes:
        print("error: --sizes must name at least one size", file=sys.stderr)
        return 1
    record = run_frontier_bench(
        sizes,
        channels=args.channels,
        fanout=args.fanout,
        theta=args.theta,
        seed=args.seed,
    )
    if args.json_path:
        write_approx_bench_json(
            args.json_path,
            record,
            rev=args.rev,
            timestamp=args.timestamp,
        )
    header = (
        f"{'size':>9} {'planner':>8} {'data_wait':>12} "
        f"{'vs lower':>8} {'vs best':>8} {'plan s':>8}"
    )
    print(header)
    for key in sorted(record["result"], key=int):
        row = record["result"][key]
        for name in ("ptas", "sorting", "meta"):
            point = row["frontier"][name]
            print(
                f"{row['items']:>9} {name:>8} "
                f"{point['data_wait']:>12.2f} "
                f"{point['ratio_to_lower']:>8.2f} "
                f"{point['ratio_to_best']:>8.2f} "
                f"{point['plan_seconds']:>8.3f}"
            )
    if args.json_path:
        print(f"approx record written to {args.json_path}")
    checks = record["aggregate"]["checks"]
    failed = sorted(name for name, ok in checks.items() if not ok)
    for name in failed:
        print(f"error: approx check failed: {name}", file=sys.stderr)
    return 0 if not failed else 1


def _cmd_approx_explain(args) -> int:
    from .approx import decide, extract_features

    _, weights = _approx_catalog(args.items, args.theta, args.seed)
    features = extract_features(
        weights, args.channels, fanout=args.fanout
    )
    method, options, reason = decide(
        features, wire_safe=args.wire_safe
    )
    print(
        f"features: items={features.items} channels={features.channels} "
        f"fanout={features.fanout} gini={features.gini:.3f} "
        f"entropy={features.entropy:.3f}"
    )
    print(f"decision: {method!r}" + (f" {options}" if options else ""))
    print(f"reason: {reason}")
    if args.wire_safe:
        print("(restricted to wire-routable planners)")
    return 0


def _cmd_sched(args) -> int:
    if args.sched_command == "bench":
        return _cmd_sched_bench(args)
    if args.sched_command == "loadtest":
        return _cmd_sched_loadtest(args)

    from .exceptions import ReproError
    from .sched import ScheduleStore

    try:
        store = ScheduleStore(args.store_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        if args.sched_command == "log":
            return _cmd_sched_log(args, store)
        if args.sched_command == "show":
            return _cmd_sched_show(args, store)
        if args.sched_command == "diff":
            return _cmd_sched_diff(args, store)
        if args.sched_command == "rollback":
            return _cmd_sched_rollback(args, store)
        if args.sched_command == "gc":
            return _cmd_sched_gc(args, store)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled sched command {args.sched_command!r}")


def _cmd_sched_log(args, store) -> int:
    records = store.versions()
    if not records:
        print(f"store at {args.store_dir} is empty")
        return 0
    head = records[-1].version
    if args.limit > 0:
        records = records[-args.limit:]
    for record in records:
        marker = "*" if record.version == head else " "
        parent = f"<- v{record.parent}" if record.parent else "  root"
        print(
            f"{marker} v{record.version:<4} {record.kind:<8} "
            f"{record.content_id[:12]} {parent:<8} {record.note}"
        )
    print(f"{head} version(s), {store.size_bytes()} bytes on disk")
    return 0


def _cmd_sched_show(args, store) -> int:
    from .broadcast.metrics import expected_access_time

    head = store.head
    if head is None:
        print(f"error: store at {args.store_dir} is empty", file=sys.stderr)
        return 1
    record = store.record(
        args.version if args.version is not None else head.version
    )
    result = store.load(record.version)
    print(
        f"version {record.version} ({record.kind}, "
        f"content {record.content_id[:12]}): {record.note or 'no note'}"
    )
    print(f"method: {result.method}, planned cost: {result.cost:.4f}")
    print(result.schedule.to_ascii())
    print(f"data wait            = {result.schedule.data_wait():.4f} slots")
    print(
        f"expected access time = "
        f"{expected_access_time(result.schedule):.4f}"
    )
    return 0


def _cmd_sched_diff(args, store) -> int:
    import json

    from .sched import delta

    doc_from = store.doc(args.from_version)
    doc_to = store.doc(args.to_version)
    ops = delta(doc_from, doc_to)
    if not ops:
        print(
            f"versions {args.from_version} and {args.to_version} are "
            "content-identical"
        )
        return 0
    print(
        f"v{args.from_version} -> v{args.to_version}: {len(ops)} op(s)"
    )
    for op in ops:
        path = "/".join(str(part) for part in op["path"]) or "<root>"
        if op["op"] == "set":
            print(f"  set  {path} = {json.dumps(op['value'])}")
        elif op["op"] == "del":
            print(f"  del  {path}")
        elif op["op"] == "push":
            print(f"  push {path} += {json.dumps(op['values'])}")
        else:  # trim
            print(f"  trim {path} -> length {op['length']}")
    return 0


def _cmd_sched_rollback(args, store) -> int:
    record = store.rollback(args.to_version, note=args.note)
    print(
        f"rolled back to version {args.to_version}: published as "
        f"version {record.version} (content {record.content_id[:12]}, "
        "byte-identical by construction)"
    )
    print(
        "a station serving with --store picks this up at its next "
        "cycle boundary"
    )
    return 0


def _cmd_sched_gc(args, store) -> int:
    removed = store.gc()
    if removed:
        for object_id in removed:
            print(f"removed {object_id[:12]}")
    print(
        f"{len(removed)} unreferenced object(s) removed; "
        f"{store.size_bytes()} bytes remain"
    )
    return 0


def _cmd_sched_bench(args) -> int:
    from .sched.harness import run_store_bench, write_sched_json

    try:
        record = run_store_bench(
            versions=args.versions,
            items=args.items,
            channels=args.channels,
            fanout=args.fanout,
            seed=args.seed,
            snapshot_every=args.snapshot_every,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = record["result"]
    print(
        f"{result['versions_published']} version(s) "
        f"({result['snapshots']} snapshot(s), {result['deltas']} "
        f"delta(s)): publish {result['publish_ms_mean']:.2f} ms mean, "
        f"load {result['load_ms_mean']:.2f} ms mean, "
        f"rollback {result['rollback_ms']:.2f} ms"
    )
    print(
        f"store size {result['store_bytes_total']} bytes "
        f"({result['store_bytes_per_version']:.0f} bytes/version)"
    )
    if args.json_path:
        write_sched_json(
            args.json_path, record, rev=args.rev, timestamp=args.timestamp
        )
        print(f"sched record written to {args.json_path}")
    return _sched_checks_verdict(record)


def _cmd_sched_loadtest(args) -> int:
    import asyncio
    from contextlib import ExitStack

    from .sched.harness import run_cutover_loadtest, write_sched_json

    try:
        with ExitStack() as stack:
            tracer = None
            if args.trace_path:
                from .obs.events import JsonlTracer

                tracer = stack.enter_context(JsonlTracer(args.trace_path))
            recorder = None
            if args.postmortem_dir:
                from .obs.recorder import FlightRecorder

                recorder = FlightRecorder(dump_dir=args.postmortem_dir)
            record = asyncio.run(
                run_cutover_loadtest(
                    tuners=args.tuners,
                    items=args.items,
                    channels=args.channels,
                    fanout=args.fanout,
                    seed=args.seed,
                    max_open=args.max_open,
                    tracer=tracer,
                    flight_recorder=recorder,
                )
            )
    except OSError as error:
        print(f"error: station unreachable mid-run: {error}", file=sys.stderr)
        return 1
    if args.trace_path:
        print(f"span trace written to {args.trace_path}")
    if recorder is not None and recorder.triggers:
        for trigger in recorder.triggers:
            print(
                f"postmortem dumped: {trigger.bundle or '(memory only)'} "
                f"({trigger.reason})",
                file=sys.stderr,
            )
    result = record["result"]
    print(
        f"{result['completed']} completed, {result['abandoned']} "
        f"abandoned in {result['wall_seconds']:.2f}s; "
        f"{result['cutovers']} cutover(s) ridden, "
        f"{result['unaccounted_frames']} unaccounted frame(s)"
    )
    print(
        f"store: {len(result['store']['versions'])} version(s), "
        f"{result['store']['verified_versions']} verified, "
        f"{result['store']['size_bytes']} bytes"
    )
    if args.json_path:
        write_sched_json(
            args.json_path, record, rev=args.rev, timestamp=args.timestamp
        )
        print(f"sched record written to {args.json_path}")
    return _sched_checks_verdict(record)


def _sched_checks_verdict(record: dict) -> int:
    failed = sorted(
        name for name, ok in record["checks"].items() if not ok
    )
    for name in failed:
        print(f"error: sched check failed: {name}", file=sys.stderr)
    return 0 if not failed else 1


def _cmd_obs(args) -> int:
    from .obs import (
        diff_trace_files,
        format_diff,
        format_timeline,
        load_timeline,
    )

    # Exit codes are uniform across every obs subcommand: 0 clean,
    # 1 divergence/regression/violation, 2 usage or I/O error.
    if args.obs_command == "timeline":
        try:
            timeline = load_timeline(args.trace)
        except OSError as error:
            print(f"error: cannot read trace: {error}", file=sys.stderr)
            return 2
        print(
            format_timeline(
                timeline, limit=args.limit, channel=args.channel
            )
        )
        return 0

    if args.obs_command == "diff":
        try:
            diff = diff_trace_files(args.trace_a, args.trace_b)
        except OSError as error:
            print(f"error: cannot read trace: {error}", file=sys.stderr)
            return 2
        print(
            format_diff(
                diff,
                label_a=args.label_a,
                label_b=args.label_b,
                limit=args.limit,
            )
        )
        return 0 if diff.identical else 1

    if args.obs_command == "attrib":
        return _cmd_obs_attrib(args)

    if args.obs_command == "spans":
        return _cmd_obs_spans(args)

    if args.obs_command == "postmortem":
        return _cmd_obs_postmortem(args)

    assert args.obs_command == "regress"
    return _cmd_obs_regress(args)


def _cmd_obs_spans(args) -> int:
    from .obs import (
        check_span_tree,
        format_span_tree,
        read_events,
        reconcile_with_attrib,
        span_tree,
    )

    try:
        events = list(read_events(args.trace))
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2
    roots = span_tree(events, trace_id=args.trace_id)
    if not roots:
        print(
            "error: trace holds no finished spans "
            "(was it recorded with 'sched loadtest --trace'?)",
            file=sys.stderr,
        )
        return 2
    per_walk, mismatches = reconcile_with_attrib(events)
    if args.trace_id is not None:
        # The reconciliation table follows the filter: keep only walks
        # whose segments belong to the requested trace.
        walks_in_trace = {
            dict(node.span.attrs).get("walk")
            for root in roots
            for node in root.walk()
            if "walk" in dict(node.span.attrs)
        }
        per_walk = {
            walk: info
            for walk, info in per_walk.items()
            if walk in walks_in_trace
        }
    if args.limit and len(per_walk) > args.limit:
        shown = dict(sorted(per_walk.items())[: args.limit])
        print(
            f"(showing {args.limit} of {len(per_walk)} walks; "
            "--limit 0 for all)"
        )
    else:
        shown = per_walk
    print(format_span_tree(roots, reconciliation=shown))
    violations = check_span_tree(roots)
    for problem in violations:
        print(f"error: {problem}", file=sys.stderr)
    for problem in mismatches:
        print(f"error: {problem}", file=sys.stderr)
    return 0 if not violations and not mismatches else 1


def _cmd_obs_postmortem(args) -> int:
    from .obs import format_postmortem, format_span_tree, load_bundle
    from .obs.recorder import bundle_span_tree

    try:
        bundle = load_bundle(args.bundle)
    except OSError as error:
        print(f"error: cannot read bundle: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_postmortem(bundle))
    if args.tree:
        roots = bundle_span_tree(bundle)
        if roots:
            print()
            print(format_span_tree(roots))
    return 0


def _cmd_obs_attrib(args) -> int:
    from .obs import (
        AttributionError,
        attribute_events,
        format_attribution,
        read_events,
    )

    try:
        attributions = attribute_events(read_events(args.trace))
    except OSError as error:
        print(f"error: cannot read trace: {error}", file=sys.stderr)
        return 2
    except AttributionError as error:
        # A trace that breaks the additivity invariant is a divergence
        # in the measured data, not a usage problem.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not attributions:
        print(
            "error: trace holds no finished walks to attribute "
            "(was it recorded with 'loadtest --trace'?)",
            file=sys.stderr,
        )
        return 2
    print(format_attribution(attributions, slowest=args.slowest))
    inexact = [a for a in attributions if not a.exact]
    if inexact:
        worst = inexact[0]
        print(
            f"error: {len(inexact)} walk(s) violate the exactness "
            f"invariant (first: walk {worst.walk} {worst.key!r}, phases "
            f"sum to {worst.total} but measured access time is "
            f"{worst.access_time})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_obs_regress(args) -> int:
    import json as _json
    import os

    from .obs import (
        RegressError,
        append_history,
        compare_runs,
        extract_metrics,
        format_report,
        load_history,
    )

    try:
        with open(args.candidate) as handle:
            merged = _json.load(handle)
        entry = extract_metrics(merged)
    except OSError as error:
        print(f"error: cannot read candidate: {error}", file=sys.stderr)
        return 2
    except (ValueError, RegressError) as error:
        print(f"error: bad candidate record: {error}", file=sys.stderr)
        return 2
    if args.append_path:
        append_history(args.append_path, entry)
        print(f"candidate entry appended to {args.append_path}")
    if not os.path.exists(args.baseline):
        if args.bootstrap:
            append_history(args.baseline, entry)
            print(
                f"baseline seeded at {args.baseline} from "
                f"{args.candidate} (rev {entry.get('rev') or '?'})"
            )
            return 0
        print(
            f"error: baseline {args.baseline} does not exist "
            "(seed it with --bootstrap)",
            file=sys.stderr,
        )
        return 2
    try:
        history = load_history(args.baseline)
        if not history:
            print(
                f"error: baseline {args.baseline} is empty",
                file=sys.stderr,
            )
            return 2
        report = compare_runs(
            history[-1],
            entry,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
            allow_config_mismatch=args.allow_config_mismatch,
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RegressError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_report(
            report,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
        )
    )
    return 0 if report.ok else 1


def _cmd_bench_merge(args) -> int:
    from .bench_envelope import load_records, write_merged_json

    try:
        records = load_records(args.inputs)
        merged = write_merged_json(args.out, records)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    checks = merged["aggregate"]["checks"]
    for name in sorted(checks):
        print(f"{'ok  ' if checks[name] else 'FAIL'} {name}")
    print(f"merged record written to {args.out}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
