"""Command-line interface: ``broadcast-alloc`` / ``python -m repro.cli``.

Subcommands regenerate each experiment on demand:

* ``demo``     — solve the Fig. 1 running example on 1..k channels;
* ``table1``   — the §4.1 pruning-effects table;
* ``fig14``    — the §4.2 Sorting-vs-Optimal sweep;
* ``compare``  — heuristics/baselines vs optimal on random trees;
* ``channels`` — data wait vs channel count (Corollary 1 regime);
* ``ablation`` — pruning-rule search-effort ablation;
* ``bench``    — search-core perf suite (seed vs overhauled vs DFS B&B),
  optionally emitting a JSON perf record via ``--json``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.comparisons import (
    channel_scaling,
    compare_methods,
    format_channel_scaling,
    format_method_comparison,
    format_pruning_ablation,
    pruning_ablation,
)
from .analysis.fig14 import format_fig14, run_fig14
from .analysis.table1 import format_table1, run_table1
from .core.optimal import solve
from .tree.builders import paper_example_tree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="broadcast-alloc",
        description=(
            "Optimal index and data allocation in multiple broadcast "
            "channels (Lo & Chen, ICDE 2000) - experiment runner"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2000, help="RNG seed (default 2000)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="solve the Fig. 1 example")
    demo.add_argument(
        "--channels", type=int, default=2, help="max channel count to show"
    )

    table1 = commands.add_parser("table1", help="Table 1 pruning effects")
    table1.add_argument(
        "--max-fanout",
        type=int,
        default=6,
        help="largest m to include (6 matches the paper)",
    )
    table1.add_argument(
        "--max-enum-p12",
        type=int,
        default=6,
        help="largest m to enumerate the P1,2 column for",
    )

    fig14 = commands.add_parser("fig14", help="Fig. 14 Sorting vs Optimal")
    fig14.add_argument("--trials", type=int, default=30)

    compare = commands.add_parser(
        "compare", help="heuristics and baselines vs optimal"
    )
    compare.add_argument("--trials", type=int, default=20)
    compare.add_argument("--data-count", type=int, default=12)

    channels = commands.add_parser(
        "channels", help="data wait vs channel count"
    )
    channels.add_argument("--fanout", type=int, default=3)

    commands.add_parser("ablation", help="pruning-rule ablation")

    bench = commands.add_parser(
        "bench",
        help="search-core perf suite: seed vs overhauled vs DFS B&B",
    )
    bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="also write the full JSON perf record to PATH",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per case; wall time is the best-of-N "
        "(default 3)",
    )

    spaces = commands.add_parser(
        "spaces", help="render the reduced search trees (Figs. 9-12)"
    )
    spaces.add_argument(
        "--channels", type=int, default=2, help="k for the topological tree"
    )

    sensitivity = commands.add_parser(
        "sensitivity", help="fanout and skew sensitivity sweeps"
    )
    sensitivity.add_argument("--catalog", type=int, default=12)
    sensitivity.add_argument("--trials", type=int, default=8)

    solve_cmd = commands.add_parser(
        "solve", help="allocate a user-supplied index tree (JSON)"
    )
    solve_cmd.add_argument(
        "--input",
        required=True,
        help="path to a broadcast-alloc/tree JSON document",
    )
    solve_cmd.add_argument("--channels", type=int, default=1)
    solve_cmd.add_argument(
        "--budget",
        type=int,
        default=500_000,
        help="exact-search state budget before the sorting heuristic "
        "takes over",
    )
    solve_cmd.add_argument(
        "--output",
        default=None,
        help="optional path to write the solved schedule JSON to",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)

    if args.command == "demo":
        tree = paper_example_tree()
        print("Fig. 1 index tree:")
        print(tree.to_ascii())
        for k in range(1, args.channels + 1):
            result = solve(tree, channels=k)
            print(
                f"\n{k} channel(s): optimal data wait = {result.cost:.4f} "
                f"(method: {result.method})"
            )
            print(result.schedule.to_ascii())
        return 0

    if args.command == "table1":
        fanouts = tuple(range(2, args.max_fanout + 1))
        report = run_table1(
            fanouts=fanouts, seed=args.seed, max_enum_p12=args.max_enum_p12
        )
        print(format_table1(report))
        return 0

    if args.command == "fig14":
        print(format_fig14(run_fig14(trials=args.trials, seed=args.seed)))
        return 0

    if args.command == "compare":
        results = [
            compare_methods(
                rng, workload, data_count=args.data_count, trials=args.trials
            )
            for workload in ("zipf", "normal")
        ]
        print(format_method_comparison(results))
        return 0

    if args.command == "channels":
        print(format_channel_scaling(channel_scaling(rng, fanout=args.fanout)))
        return 0

    if args.command == "ablation":
        print(format_pruning_ablation(pruning_ablation(rng)))
        return 0

    if args.command == "bench":
        from .bench import format_bench, run_bench, write_bench_json

        if args.repeats < 1:
            print("error: --repeats must be >= 1", file=sys.stderr)
            return 2
        if args.json_path:
            record = write_bench_json(args.json_path, repeats=args.repeats)
        else:
            record = run_bench(repeats=args.repeats)
        print(format_bench(record))
        if args.json_path:
            print(f"perf record written to {args.json_path}")
        checks = record["aggregate"]["checks"]
        return 0 if all(checks.values()) else 1

    if args.command == "solve":
        import json

        from .broadcast.metrics import (
            expected_access_time,
            expected_tuning_time,
        )
        from .exceptions import SearchBudgetExceeded
        from .heuristics.channel_allocation import sorting_schedule
        from .io.json_io import save_schedule, tree_from_dict

        with open(args.input) as handle:
            tree = tree_from_dict(json.load(handle))
        try:
            result = solve(tree, channels=args.channels, budget=args.budget)
            schedule = result.schedule
            print(f"method: {result.method} (exact)")
        except SearchBudgetExceeded:
            schedule = sorting_schedule(tree, args.channels)
            print(
                f"method: sorting heuristic (exact search exceeded "
                f"{args.budget} states)"
            )
        print(schedule.to_ascii())
        print(f"data wait            = {schedule.data_wait():.4f} slots")
        print(f"expected access time = {expected_access_time(schedule):.4f}")
        print(f"expected tuning time = {expected_tuning_time(schedule):.4f}")
        if args.output:
            save_schedule(schedule, args.output)
            print(f"schedule written to {args.output}")
        return 0

    if args.command == "sensitivity":
        from .analysis.sensitivity import (
            fanout_sensitivity,
            format_fanout_sensitivity,
            format_skew_sensitivity,
            skew_sensitivity,
        )
        from .workloads.catalogs import stock_catalog

        items = stock_catalog(rng, count=args.catalog)
        print(format_fanout_sensitivity(fanout_sensitivity(items)))
        print()
        print(
            format_skew_sensitivity(
                skew_sensitivity(rng, trials=args.trials)
            )
        )
        return 0

    if args.command == "spaces":
        from .core.problem import AllocationProblem
        from .core.render import render_data_tree, render_topological_tree

        tree = paper_example_tree()
        print(
            f"Reduced {args.channels}-channel topological tree of the "
            "Fig. 1 example:"
        )
        print(
            render_topological_tree(AllocationProblem(tree, args.channels))
        )
        print("\nData tree with Property 4 marks (x = pruned), Fig. 12 style:")
        print(
            render_data_tree(AllocationProblem(tree, 1), annotate=True)
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
