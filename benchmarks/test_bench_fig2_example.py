"""Bench: the Fig. 2 worked example (§2.2).

Regenerates the paper's 6.01 / 3.88 example data waits together with the
true optima our solver finds for the same tree, and times the optimal
solve on 1..3 channels. Artifact: ``benchmarks/out/fig2_example.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.broadcast.schedule import BroadcastSchedule
from repro.core.optimal import solve
from repro.tree.builders import paper_example_tree

from conftest import write_artifact


@pytest.mark.parametrize("channels", [1, 2, 3])
def test_optimal_solve_fig1_tree(benchmark, channels):
    tree = paper_example_tree()
    result = benchmark(solve, tree, channels)
    expected = {1: 391 / 70, 2: 264 / 70, 3: 242 / 70}[channels]
    assert result.cost == pytest.approx(expected)


def test_regenerate_fig2_artifact(benchmark, artifact_dir):
    def run_once():
        tree = paper_example_tree()
        fig2a = BroadcastSchedule.from_sequence(
            tree, [tree.find(l) for l in "13E4CD2AB"]
        )
        placement = {}
        for slot, label in enumerate("12A4C", start=1):
            placement[tree.find(label)] = (1, slot)
        for slot, label in [(2, "3"), (3, "B"), (4, "E"), (5, "D")]:
            placement[tree.find(label)] = (2, slot)
        fig2b = BroadcastSchedule(tree, placement, channels=2)

        rows = [
            ["Fig. 2(a) example", 1, fig2a.data_wait()],
            ["optimal", 1, solve(tree, channels=1).cost],
            ["Fig. 2(b) example", 2, fig2b.data_wait()],
            ["optimal", 2, solve(tree, channels=2).cost],
        ]
        text = format_table(
            ["allocation", "channels", "data wait"],
            rows,
            title="Fig. 2 worked example vs the computed optimum",
            precision=4,
        )
        write_artifact(artifact_dir, "fig2_example", text)
        assert fig2a.data_wait() == pytest.approx(6.0142857, abs=1e-6)
        assert fig2b.data_wait() == pytest.approx(3.8857142, abs=1e-6)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
