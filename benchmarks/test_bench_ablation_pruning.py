"""Ablation A2: what each §3.2 pruning rule buys the search.

Times the best-first search under cumulative rule sets and regenerates
the nodes-expanded table (``benchmarks/out/ablation_pruning.txt``). Also
times the data-tree counting under each Table 1 rule set on the paper's
own m = 3 experiment tree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparisons import format_pruning_ablation, pruning_ablation
from repro.core.candidates import PruningConfig
from repro.core.datatree import DataTreeConfig, count_data_sequences
from repro.core.problem import AllocationProblem
from repro.core.search import best_first_search
from repro.tree.builders import balanced_tree, random_tree

from conftest import write_artifact

RULE_SETS = {
    "none": PruningConfig.none(),
    "p1_only": PruningConfig.none().without(forced_completion=True),
    "p1_filter": PruningConfig.none().without(
        forced_completion=True, candidate_filter=True
    ),
    "paper": PruningConfig.paper(),
}


@pytest.mark.parametrize("rules", list(RULE_SETS))
def test_search_effort_per_rule_set(benchmark, rules):
    tree = random_tree(np.random.default_rng(8), 8)
    problem = AllocationProblem(tree, channels=2)
    result = benchmark(best_first_search, problem, RULE_SETS[rules])
    reference = best_first_search(problem, PruningConfig.paper())
    assert result.cost == pytest.approx(reference.cost)


@pytest.mark.parametrize(
    "config_name", ["property2_only", "properties_1_2", "paper"]
)
def test_datatree_counting_per_rule_set(benchmark, config_name):
    tree = balanced_tree(
        3, depth=3, weights=[float(w) for w in range(9, 0, -1)]
    )
    problem = AllocationProblem(tree, channels=1)
    config = getattr(DataTreeConfig, config_name)()
    count = benchmark(count_data_sequences, problem, config)
    expected = {"property2_only": 1680, "properties_1_2": 186}
    if config_name in expected:
        assert count == expected[config_name]


def test_regenerate_pruning_artifact(benchmark, artifact_dir):
    def run_once():
        rows = pruning_ablation(
            np.random.default_rng(2000), data_count=8, channels=2
        )
        assert rows[-1].nodes_expanded <= rows[0].nodes_expanded
        write_artifact(
            artifact_dir, "ablation_pruning", format_pruning_ablation(rows)
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
