"""Ablation A3: data wait and solve time vs channel count.

Sweeps k for a fixed tree, covering the best-first regime and the
Corollary 1 closed-form regime, plus the [SV96] fixed-channel baseline.
Artifact: ``benchmarks/out/channel_scaling.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparisons import channel_scaling, format_channel_scaling
from repro.baselines.level_allocation import sv96_level_schedule
from repro.core.corollaries import corollary1_applies
from repro.core.optimal import solve
from repro.tree.builders import balanced_tree
from repro.workloads.weights import normal_weights

from conftest import write_artifact


def _tree():
    rng = np.random.default_rng(77)
    return balanced_tree(
        3, depth=3, weights=normal_weights(rng, 9, mean=100.0, sigma=30.0)
    )


@pytest.mark.parametrize("channels", [1, 2, 3, 4, 6, 9])
def test_solve_time_per_channel_count(benchmark, channels):
    tree = _tree()
    result = benchmark(solve, tree, channels)
    if corollary1_applies(tree, channels):
        assert result.method == "corollary1"


def test_sv96_baseline_timing(benchmark):
    tree = _tree()
    schedule = benchmark(sv96_level_schedule, tree)
    same_k_optimum = solve(tree, channels=schedule.channels).cost
    assert schedule.data_wait() >= same_k_optimum - 1e-9


def test_regenerate_channel_scaling_artifact(benchmark, artifact_dir):
    def run_once():
        points = channel_scaling(np.random.default_rng(2000), fanout=3)
        waits = [p.optimal_wait for p in points]
        for narrow, wide in zip(waits, waits[1:]):
            assert wide <= narrow + 1e-9
        assert points[-1].corollary1
        write_artifact(
            artifact_dir, "channel_scaling", format_channel_scaling(points)
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
