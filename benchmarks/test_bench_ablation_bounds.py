"""Ablation A1: the paper's ``U(X)`` bound vs the packed bound.

Both are admissible, so both find the optimum; the packed bound prunes
the best-first frontier harder. Timed head to head on the same trees;
the nodes-expanded comparison lands in
``benchmarks/out/ablation_bounds.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.candidates import PruningConfig
from repro.core.problem import AllocationProblem
from repro.core.search import best_first_search
from repro.tree.builders import random_tree

from conftest import write_artifact


def _problem(seed: int, data_count: int = 9, channels: int = 2):
    tree = random_tree(np.random.default_rng(seed), data_count)
    return AllocationProblem(tree, channels=channels)


@pytest.mark.parametrize("bound", ["adjacent", "packed"])
def test_best_first_bound_timing(benchmark, bound):
    problem = _problem(seed=11)
    result = benchmark(best_first_search, problem, None, bound)
    assert result.cost > 0


def test_regenerate_bounds_artifact(benchmark, artifact_dir):
    def run_once():
        rows = []
        for seed in range(5):
            problem = _problem(seed, data_count=9)
            adjacent = best_first_search(problem, bound="adjacent")
            packed = best_first_search(problem, bound="packed")
            assert packed.cost == pytest.approx(adjacent.cost)
            assert packed.nodes_expanded <= adjacent.nodes_expanded
            rows.append(
                [
                    seed,
                    adjacent.nodes_expanded,
                    packed.nodes_expanded,
                    100.0 * (1 - packed.nodes_expanded / adjacent.nodes_expanded),
                ]
            )
        text = format_table(
            ["tree seed", "adjacent U(X) nodes", "packed U(X) nodes", "saved %"],
            rows,
            title="A1: best-first effort under the paper's bound vs the packed bound",
        )
        write_artifact(artifact_dir, "ablation_bounds", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)


def test_unpruned_search_with_both_bounds_agrees(benchmark):
    problem = _problem(seed=3, data_count=6)
    result = benchmark(
        best_first_search, problem, PruningConfig.none(), "packed"
    )
    reference = best_first_search(problem, PruningConfig.none(), "adjacent")
    assert result.cost == pytest.approx(reference.cost)
