"""Bench: Table 1 — pruning effects (§4.1).

Regenerates the paper's Table 1 for full balanced m-ary trees of depth 3
and times the three counting pipelines per fanout. The closed-form and
the weight-independent enumerated columns (m <= 4) reproduce the paper's
published counts exactly (6/4/1 for m = 2; 1680/186 for m = 3; 438048
for m = 4); the Property-1,2,4 column is weight-dependent and matches in
magnitude. The full table lands in ``benchmarks/out/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.table1 import format_table1, run_table1
from repro.core.counting import property2_closed_form, table1_row
from repro.core.datatree import DataTreeConfig, count_data_sequences
from repro.core.problem import AllocationProblem
from repro.tree.builders import balanced_tree
from repro.workloads.weights import uniform_weights

from conftest import write_artifact


def _tree(rng, fanout):
    weights = uniform_weights(
        rng, fanout * fanout, low=1.0, high=101.0, integer=True
    )
    return balanced_tree(fanout, depth=3, weights=weights)


@pytest.mark.parametrize("fanout", [2, 3, 4, 5, 6])
def test_property2_closed_form_column(benchmark, rng, fanout):
    tree = _tree(rng, fanout)
    value = benchmark(property2_closed_form, tree)
    paper = {2: 6, 3: 1680, 4: 63063000}
    if fanout in paper:
        assert value == paper[fanout]


@pytest.mark.parametrize("fanout", [2, 3, 4])
def test_properties_1_2_enumeration_column(benchmark, rng, fanout):
    problem = AllocationProblem(_tree(rng, fanout), channels=1)
    count = benchmark(
        count_data_sequences, problem, DataTreeConfig.properties_1_2()
    )
    # These counts are weight-pattern independent for generic weights and
    # match the paper digit for digit.
    assert count == {2: 4, 3: 186, 4: 438048}[fanout]


@pytest.mark.parametrize("fanout", [2, 3, 4, 5])
def test_properties_1_2_4_enumeration_column(benchmark, rng, fanout):
    problem = AllocationProblem(_tree(rng, fanout), channels=1)
    count = benchmark(
        count_data_sequences, problem, DataTreeConfig.paper()
    )
    # Weight-dependent: assert the paper's order of magnitude.
    ceiling = {2: 4, 3: 40, 4: 500, 5: 20000}[fanout]
    assert 1 <= count <= ceiling


def test_table1_full_row_m3(benchmark, rng):
    tree = _tree(rng, 3)
    row = benchmark(table1_row, tree, 3)
    assert row.by_property2 == row.by_property2_enumerated == 1680


def test_regenerate_table1_artifact(benchmark, artifact_dir):
    def run_once():
        # Full paper range, every column enumerated — including the
        # cells the paper itself marks N/A (the memoised DP affords it).
        report = run_table1(fanouts=(2, 3, 4, 5, 6), seed=2000)
        text = format_table1(report)
        write_artifact(artifact_dir, "table1", text)
        assert "1680" in text
        assert "438048" in text

    benchmark.pedantic(run_once, rounds=1, iterations=1)
