"""Bench A9: design-knob sensitivity + the wire format's throughput.

Regenerates the fanout sweep (packet size vs tuning vs wait — the
[SV96] tuning decision) and the Zipf-skew sweep into
``benchmarks/out/sensitivity.txt``, and times frame encode/decode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    fanout_sensitivity,
    format_fanout_sensitivity,
    format_skew_sensitivity,
    skew_sensitivity,
)
from repro.broadcast.pointers import compile_program
from repro.core.optimal import solve
from repro.io.wire import decode_cycle, encode_program
from repro.tree.alphabetic import optimal_alphabetic_tree
from repro.workloads.catalogs import stock_catalog

from conftest import write_artifact


def _program(count=20, channels=2):
    rng = np.random.default_rng(6)
    items = stock_catalog(rng, count=count)
    tree = optimal_alphabetic_tree(
        [i.label for i in items],
        [i.weight for i in items],
        fanout=3,
        keys=[i.key for i in items],
    )
    return compile_program(solve(tree, channels=channels).schedule)


@pytest.mark.parametrize("fanout", [2, 4, 8])
def test_fanout_point_timing(benchmark, rng, fanout):
    items = stock_catalog(rng, count=12)
    points = benchmark(fanout_sensitivity, items, (fanout,))
    assert points[0].fanout == fanout


def test_wire_encode_throughput(benchmark):
    program = _program()
    frames = benchmark(encode_program, program)
    assert len(frames) == program.channels


def test_wire_decode_throughput(benchmark):
    frames = encode_program(_program())
    decoded = benchmark(decode_cycle, frames)
    assert len(decoded) == len(frames)


def test_regenerate_sensitivity_artifact(benchmark, artifact_dir):
    def run_once():
        rng = np.random.default_rng(2000)
        items = stock_catalog(rng, count=12)
        fanout_points = fanout_sensitivity(items, fanouts=(2, 3, 4, 6))
        tunings = [p.tuning_time for p in fanout_points]
        assert tunings[0] >= tunings[-1]  # wider fanout, fewer probes
        skew_points = skew_sensitivity(
            np.random.default_rng(2000), trials=8
        )
        optimal = [p.optimal_wait for p in skew_points]
        assert optimal == sorted(optimal, reverse=True)  # skew helps
        text = (
            format_fanout_sensitivity(fanout_points)
            + "\n\n"
            + format_skew_sensitivity(skew_points)
        )
        write_artifact(artifact_dir, "sensitivity", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
