"""Bench: Fig. 14 — Index Tree Sorting vs Optimal (§4.2).

Times the two methods on the paper's workload (full balanced 4-ary tree,
depth 3, weights ~ N(100, sigma), one channel) and regenerates the
figure's series into ``benchmarks/out/fig14.txt``. The published shape —
Sorting tracks Optimal with a gap that widens as sigma grows — is
asserted on the regenerated numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.fig14 import format_fig14, run_fig14
from repro.core.optimal import solve
from repro.heuristics.sorting import sorting_broadcast
from repro.tree.builders import balanced_tree
from repro.workloads.weights import normal_weights

from conftest import write_artifact

SIGMAS = [10.0, 20.0, 30.0, 40.0]


def _tree(rng, sigma):
    weights = normal_weights(rng, 16, mean=100.0, sigma=sigma)
    return balanced_tree(4, depth=3, weights=weights)


@pytest.mark.parametrize("sigma", SIGMAS)
def test_optimal_search_per_sigma(benchmark, rng, sigma):
    tree = _tree(rng, sigma)
    result = benchmark(solve, tree, 1)
    assert 9.0 < result.cost < 13.0  # the figure's y-range neighbourhood


@pytest.mark.parametrize("sigma", SIGMAS)
def test_sorting_heuristic_per_sigma(benchmark, rng, sigma):
    tree = _tree(rng, sigma)
    schedule = benchmark(sorting_broadcast, tree)
    assert schedule.data_wait() >= solve(tree, channels=1).cost - 1e-9


def test_regenerate_fig14_artifact(benchmark, artifact_dir):
    def run_once():
        report = run_fig14(trials=30, seed=2000)
        text = format_fig14(report)
        write_artifact(artifact_dir, "fig14", text)
        # Shape assertions on the regenerated series:
        for point in report.points:
            assert point.sorting_wait >= point.optimal_wait - 1e-9
        # Near-uniform weights -> near-zero gap (the paper's observation).
        assert report.points[0].gap_percent < 1.0
        # The gap widens with the variance.
        assert report.points[-1].gap_percent > report.points[0].gap_percent

    benchmark.pedantic(run_once, rounds=1, iterations=1)
