"""Benches A6–A8: the §5 future-work extensions.

* A6 — root replication: the probe/data trade-off sweep and its
  access-optimal factor (``benchmarks/out/replication.txt``);
* A7 — DAG dependencies: exact vs weight-density greedy on random DAGs
  (``benchmarks/out/dag.txt``);
* A8 — online adaptation under drift: static vs adaptive vs oracle
  (``benchmarks/out/adaptive.txt``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.extensions.dag import (
    DagAllocationProblem,
    dag_order_cost,
    greedy_dag_order,
    solve_dag,
)
from repro.extensions.replication import replicate_root, replication_tradeoff
from repro.online.adaptive import simulate_drift
from repro.tree.builders import balanced_tree
from repro.workloads.weights import zipf_weights

from conftest import write_artifact


def _random_dag(rng, count=14, density=0.25, channels=2):
    keys = [f"n{i}" for i in range(count)]
    weights = {k: float(rng.integers(1, 50)) for k in keys}
    edges = [
        (keys[i], keys[j])
        for i in range(count)
        for j in range(i + 1, count)
        if rng.random() < density
    ]
    return DagAllocationProblem(weights, edges, channels=channels)


# ---------------------------------------------------------------------------
# A6: replication
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("copies", [1, 2, 4])
def test_replicated_layout_construction(benchmark, rng, copies):
    tree = balanced_tree(3, depth=3, weights=zipf_weights(rng, 9))
    program = benchmark(replicate_root, tree, copies)
    assert len(program.root_slots) == copies


def test_regenerate_replication_artifact(benchmark, artifact_dir):
    def run_once():
        rng = np.random.default_rng(2000)
        tree = balanced_tree(3, depth=3, weights=zipf_weights(rng, 9))
        points = replication_tradeoff(tree, factors=(1, 2, 3, 4, 6, 8))
        probes = [p.probe_wait for p in points]
        waits = [p.data_wait for p in points]
        assert probes == sorted(probes, reverse=True)
        assert waits == sorted(waits)
        rows = [
            [p.copies, p.cycle_length, p.data_wait, p.probe_wait, p.access_time]
            for p in points
        ]
        text = format_table(
            ["copies", "cycle", "data wait", "probe wait", "access time"],
            rows,
            title="A6: root-replication trade-off (balanced 3-ary tree, Zipf weights)",
            precision=3,
        )
        write_artifact(artifact_dir, "replication", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A7: DAG dependencies
# ---------------------------------------------------------------------------

def test_dag_exact_search(benchmark):
    problem = _random_dag(np.random.default_rng(4), count=12)
    result = benchmark(solve_dag, problem)
    assert result.cost > 0


def test_dag_greedy_heuristic(benchmark):
    problem = _random_dag(np.random.default_rng(4), count=60)
    groups = benchmark(greedy_dag_order, problem)
    assert sum(len(g) for g in groups) == 60


def test_regenerate_dag_artifact(benchmark, artifact_dir):
    def run_once():
        rows = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            problem = _random_dag(rng, count=11)
            exact = solve_dag(problem)
            greedy_cost = dag_order_cost(problem, greedy_dag_order(problem))
            assert greedy_cost >= exact.cost - 1e-9
            rows.append(
                [
                    seed,
                    exact.cost,
                    greedy_cost,
                    100.0 * (greedy_cost / exact.cost - 1.0),
                ]
            )
        mean_gap = sum(row[3] for row in rows) / len(rows)
        assert mean_gap < 15.0  # the density rule stays near-exact
        text = format_table(
            ["dag seed", "exact wait", "greedy wait", "gap %"],
            rows,
            title="A7: exact vs weight-density greedy on random DAGs "
            "(11 nodes, 2 channels)",
            precision=3,
        )
        write_artifact(artifact_dir, "dag", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A8: online adaptation
# ---------------------------------------------------------------------------

def test_adaptive_epoch_throughput(benchmark):
    def one_run():
        return simulate_drift(
            np.random.default_rng(9),
            catalog_size=10,
            epochs=3,
            requests_per_epoch=500,
        )

    reports = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert len(reports) == 3


def test_regenerate_adaptive_artifact(benchmark, artifact_dir):
    def run_once():
        reports = simulate_drift(
            np.random.default_rng(2000),
            catalog_size=12,
            epochs=8,
            requests_per_epoch=1500,
            shift_every=2,
        )
        post = [r for r in reports if r.epoch >= 2]
        mean_static = np.mean([r.static_wait for r in post])
        mean_adaptive = np.mean([r.adaptive_wait for r in post])
        assert mean_adaptive < mean_static  # adaptation pays after drift
        rows = [
            [r.epoch, r.static_wait, r.adaptive_wait, r.oracle_wait]
            for r in reports
        ]
        text = format_table(
            ["epoch", "static", "adaptive", "oracle"],
            rows,
            title="A8: true data wait under drifting popularity "
            "(shift every 2 epochs)",
            precision=3,
        )
        write_artifact(artifact_dir, "adaptive", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
