"""Ablation A4: heuristic quality and speed vs the exact optimum.

Times Sorting, both Shrinking variants and the exact solver on matched
trees, and regenerates the quality table over skewed and normal
workloads (``benchmarks/out/heuristics.txt``). Also demonstrates the
heuristics' reason to exist: a catalog far beyond exact-search reach
allocated in milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparisons import compare_methods, format_method_comparison
from repro.core.optimal import solve
from repro.heuristics.channel_allocation import sorting_schedule
from repro.heuristics.shrinking import combine_and_solve, partition_and_solve
from repro.tree.builders import random_tree
from repro.workloads.weights import zipf_weights

from conftest import write_artifact


def _tree(data_count=12, seed=4):
    rng = np.random.default_rng(seed)
    tree = random_tree(rng, data_count, max_fanout=4)
    for leaf, weight in zip(
        tree.data_nodes(), zipf_weights(rng, data_count)
    ):
        leaf.weight = weight
    return tree


def test_exact_solver_small(benchmark):
    tree = _tree()
    result = benchmark(solve, tree, 1)
    assert result.cost > 0


def test_sorting_heuristic_small(benchmark):
    tree = _tree()
    schedule = benchmark(sorting_schedule, tree, 1)
    assert schedule.data_wait() >= solve(tree, channels=1).cost - 1e-9


@pytest.mark.parametrize("strategy", ["combine", "partition"])
def test_shrinking_heuristics_small(benchmark, strategy):
    tree = _tree()
    runner = combine_and_solve if strategy == "combine" else partition_and_solve
    schedule = benchmark(runner, tree, 8)
    assert schedule.data_wait() >= solve(tree, channels=1).cost - 1e-9


def test_sorting_scales_to_large_catalogs(benchmark):
    tree = _tree(data_count=400, seed=9)
    schedule = benchmark(sorting_schedule, tree, 4)
    schedule.validate()


def test_partition_scales_to_large_catalogs(benchmark):
    tree = _tree(data_count=150, seed=9)
    schedule = benchmark(partition_and_solve, tree, 10)
    schedule.validate()


def test_regenerate_heuristics_artifact(benchmark, artifact_dir):
    def run_once():
        rng = np.random.default_rng(2000)
        results = [
            compare_methods(rng, workload, data_count=12, trials=15)
            for workload in ("zipf", "normal")
        ]
        for result in results:
            assert result.optimal <= result.sorting + 1e-9
            assert result.optimal <= result.combine + 1e-9
            assert result.optimal <= result.partition + 1e-9
        write_artifact(
            artifact_dir, "heuristics", format_method_comparison(results)
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)


def test_regenerate_intro_comparison_artifact(benchmark, artifact_dir):
    """A10: the §1 two-camps table — replication vs indexing."""

    def run_once():
        from repro.analysis.comparisons import (
            format_intro_comparison,
            intro_comparison,
        )

        rows = intro_comparison(
            np.random.default_rng(2000), data_count=12, theta=1.3
        )
        flat, disks, indexed, signatures = rows
        assert disks.expected_wait < flat.expected_wait  # replication wins waits
        assert indexed.expected_tuning < indexed.expected_wait  # index wins doze
        assert signatures.expected_wait > indexed.expected_wait  # sig frames cost airtime
        write_artifact(
            artifact_dir, "intro_comparison", format_intro_comparison(rows)
        )

    benchmark.pedantic(run_once, rounds=1, iterations=1)
