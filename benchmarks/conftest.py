"""Shared machinery for the benchmark harness.

Every bench regenerates one of the paper's artifacts (or one of
DESIGN.md's ablations) and, besides the pytest-benchmark timing table,
writes the regenerated experiment table to ``benchmarks/out/<name>.txt``
so EXPERIMENTS.md can quote it verbatim. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def rng():
    return np.random.default_rng(2000)


def write_artifact(directory: Path, name: str, content: str) -> None:
    path = directory / f"{name}.txt"
    path.write_text(content + "\n")
