"""Ablation A5: client-side timings across index structures.

Drives the pointer-level simulator over optimal schedules built on
different index trees (alphabetic Hu–Tucker, balanced, plain Huffman)
and regenerates the access-time / tuning-time comparison
(``benchmarks/out/client.txt``) — the access-time/tuning-time trade-off
the paper's introduction frames.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.broadcast.metrics import expected_access_time, expected_tuning_time
from repro.broadcast.pointers import compile_program
from repro.client.simulator import exact_averages, simulate_workload
from repro.core.optimal import solve
from repro.tree.alphabetic import optimal_alphabetic_tree
from repro.tree.builders import balanced_tree
from repro.tree.huffman import huffman_tree
from repro.workloads.catalogs import stock_catalog

from conftest import write_artifact


def _trees():
    rng = np.random.default_rng(13)
    items = stock_catalog(rng, count=16, theta=1.2)
    labels = [i.label for i in items]
    weights = [i.weight for i in items]
    return {
        # All binary, so the skew comparison is fanout-for-fanout fair.
        "alphabetic": optimal_alphabetic_tree(labels, weights, fanout=2),
        "balanced": balanced_tree(2, depth=5, weights=weights),
        "huffman": huffman_tree(labels, weights, fanout=2),
    }


@pytest.mark.parametrize("structure", ["alphabetic", "balanced", "huffman"])
def test_simulated_workload_per_structure(benchmark, structure):
    tree = _trees()[structure]
    program = compile_program(solve(tree, channels=2).schedule)
    rng = np.random.default_rng(5)
    summary = benchmark(simulate_workload, program, rng, 300)
    assert summary.requests == 300


def test_pointer_compilation(benchmark):
    schedule = solve(_trees()["alphabetic"], channels=2).schedule
    program = benchmark(compile_program, schedule)
    assert program.cycle_length == schedule.cycle_length


def test_regenerate_client_artifact(benchmark, artifact_dir):
    def run_once():
        rows = []
        tuning = {}
        for name, tree in _trees().items():
            schedule = solve(tree, channels=2).schedule
            program = compile_program(schedule)
            summary = exact_averages(program)
            assert summary.mean_access_time == pytest.approx(
                expected_access_time(schedule)
            )
            tuning[name] = summary.mean_tuning_time
            rows.append(
                [
                    name,
                    summary.mean_access_time,
                    summary.mean_tuning_time,
                    summary.mean_channel_switches,
                ]
            )
        # Skew-aware structures beat the balanced tree on tuning time.
        assert tuning["huffman"] <= tuning["balanced"] + 1e-9
        assert tuning["alphabetic"] <= tuning["balanced"] + 1e-9
        text = format_table(
            ["index structure", "access time", "tuning time", "switches"],
            rows,
            title="A5: client-measured costs by index structure (2 channels, optimal allocation)",
        )
        write_artifact(artifact_dir, "client", text)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
