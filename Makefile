PYTHON ?= python

.PHONY: install test bench bench-json bench-server bench-net examples experiments clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m repro.cli bench --json BENCH_search.json

bench-server:
	$(PYTHON) -m repro.cli bench-server --json BENCH_server.json

bench-net:
	$(PYTHON) -m repro.cli loadtest --tuners 1000 --check-parity --json BENCH_net.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	$(PYTHON) -m repro.cli table1
	$(PYTHON) -m repro.cli fig14
	$(PYTHON) -m repro.cli compare
	$(PYTHON) -m repro.cli channels
	$(PYTHON) -m repro.cli ablation
	$(PYTHON) -m repro.cli sensitivity
	$(PYTHON) -m repro.cli faults

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
