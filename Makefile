PYTHON ?= python

# Bench-envelope stamps (see src/repro/bench_envelope.py): every
# BENCH_*.json written through the bench-* targets carries the git
# revision and a UTC timestamp, supplied here so the benches themselves
# never read clocks they do not own.
# := (immediate) so one make invocation stamps every suite with the
# same values — bench-merge checks envelope consistency across files.
ifeq ($(origin GIT_REV), undefined)
GIT_REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
endif
ifeq ($(origin BENCH_TIMESTAMP), undefined)
BENCH_TIMESTAMP := $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
endif
BENCH_META = --rev $(GIT_REV) --timestamp $(BENCH_TIMESTAMP)
BENCH_REPEATS ?= 3
BENCH_TUNERS ?= 1000

# bench-engine trace length: the batch paths run the full trace; the
# scalar baseline and the per-walk differential gate use ENGINE_SAMPLE.
# The engine suite keeps its own repeat knob (instead of BENCH_REPEATS /
# HISTORY_REPEATS) so its config fingerprint is identical across
# bench-engine, bench-all smoke runs, and bench-history — the regress
# sentinel refuses to compare mismatched configs.
ENGINE_WALKS ?= 200000
ENGINE_SAMPLE ?= 2000
ENGINE_REPEATS ?= 3

# bench-cluster pacing: real air time (slots of CLUSTER_SLOT seconds)
# is what makes aggregate walks/sec scale with the shard count —
# sharding shortens each shard's cycle, so a paced walk finishes in
# ~1/N of the wall-clock even on one core.
CLUSTER_TUNERS ?= 100
CLUSTER_SLOT ?= 0.02
CLUSTER_SWEEP ?= 1,2,4

# bench-sched history depth: enough versions that the snapshot+delta
# encoding (not the snapshot floor) dominates bytes-per-version.
SCHED_VERSIONS ?= 40

# bench-approx catalog sizes: the committed approx baseline was seeded
# at this smoke scale (quality ratios are seed-deterministic, so the
# gate is exact); sweep 100000,1000000 by hand for the paper-scale
# frontier.
APPROX_SIZES ?= 1000,10000

# The regression trajectory (benchmarks/history/) is recorded at a
# small fixed scale so it runs everywhere, including CI smoke runs; the
# committed baseline.jsonl was seeded at exactly this scale — the
# sentinel refuses to compare mismatched configs.
HISTORY_DIR ?= benchmarks/history
HISTORY_TUNERS ?= 50
HISTORY_REPEATS ?= 1
HISTORY_TOLERANCE ?= 0.15

.PHONY: install test bench bench-json bench-server bench-net bench-cluster bench-engine bench-sched bench-approx bench-all bench-history examples experiments clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --json BENCH_search.json $(BENCH_META)

bench-server:
	$(PYTHON) -m repro.cli bench-server --json BENCH_server.json $(BENCH_META)

bench-net:
	$(PYTHON) -m repro.cli loadtest --tuners $(BENCH_TUNERS) --check-parity --json BENCH_net.json $(BENCH_META)

# Shard-count scaling sweep with per-shard accounting + parity gates,
# appended to its own trajectory and gated against the committed
# cluster baseline (--bootstrap seeds it on first run).
bench-cluster:
	mkdir -p $(HISTORY_DIR)
	$(PYTHON) -m repro.cli cluster loadtest --tuners $(CLUSTER_TUNERS) --sweep $(CLUSTER_SWEEP) --slot-duration $(CLUSTER_SLOT) --check-parity --json BENCH_cluster.json $(BENCH_META)
	$(PYTHON) -m repro.cli obs regress --baseline $(HISTORY_DIR)/cluster-baseline.jsonl --candidate BENCH_cluster.json --tolerance $(HISTORY_TOLERANCE) --append $(HISTORY_DIR)/cluster-trajectory.jsonl --bootstrap

# Batch-engine suite: throughput plus the built-in bit-identity gates,
# appended to its own trajectory and gated against the committed engine
# baseline (--bootstrap seeds it on first run).
bench-engine:
	mkdir -p $(HISTORY_DIR)
	$(PYTHON) -m repro.cli engine bench --walks $(ENGINE_WALKS) --sample $(ENGINE_SAMPLE) --repeats $(ENGINE_REPEATS) --json BENCH_engine.json $(BENCH_META)
	$(PYTHON) -m repro.cli obs regress --baseline $(HISTORY_DIR)/engine-baseline.jsonl --candidate BENCH_engine.json --tolerance $(HISTORY_TOLERANCE) --append $(HISTORY_DIR)/engine-trajectory.jsonl --bootstrap

# Versioned-store suite: publish/load/rollback latency and the
# bytes-per-version the delta encoding buys, appended to its own
# trajectory and gated against the committed sched baseline
# (--bootstrap seeds it on first run).
bench-sched:
	mkdir -p $(HISTORY_DIR)
	$(PYTHON) -m repro.cli sched bench --versions $(SCHED_VERSIONS) --json BENCH_sched.json $(BENCH_META)
	$(PYTHON) -m repro.cli obs regress --baseline $(HISTORY_DIR)/sched-baseline.jsonl --candidate BENCH_sched.json --tolerance $(HISTORY_TOLERANCE) --append $(HISTORY_DIR)/sched-trajectory.jsonl --bootstrap

# Approximation-frontier suite: quality-vs-time points for the
# repro.approx planners (ptas / sorting / meta) across APPROX_SIZES,
# appended to its own trajectory and gated against the committed
# approx baseline (--bootstrap seeds it on first run).
bench-approx:
	mkdir -p $(HISTORY_DIR)
	$(PYTHON) -m repro.cli approx frontier --sizes $(APPROX_SIZES) --json BENCH_approx.json $(BENCH_META)
	$(PYTHON) -m repro.cli obs regress --baseline $(HISTORY_DIR)/approx-baseline.jsonl --candidate BENCH_approx.json --tolerance $(HISTORY_TOLERANCE) --append $(HISTORY_DIR)/approx-trajectory.jsonl --bootstrap

bench-all: bench-json bench-server bench-net bench-engine bench-approx
	$(PYTHON) -m repro.cli bench-merge BENCH_search.json BENCH_server.json BENCH_net.json BENCH_engine.json BENCH_approx.json --out BENCH_all.json

# Run the merged suites at history scale (scratch output under
# $(HISTORY_DIR)/tmp so the full-scale BENCH_*.json records stay
# untouched), append the run to the trajectory, and gate it against
# the committed baseline — non-zero exit names the first regressed
# metric.
bench-history:
	mkdir -p $(HISTORY_DIR)/tmp
	$(PYTHON) -m repro.cli bench --repeats $(HISTORY_REPEATS) --json $(HISTORY_DIR)/tmp/search.json $(BENCH_META)
	$(PYTHON) -m repro.cli bench-server --json $(HISTORY_DIR)/tmp/server.json $(BENCH_META)
	$(PYTHON) -m repro.cli loadtest --tuners $(HISTORY_TUNERS) --check-parity --json $(HISTORY_DIR)/tmp/net.json $(BENCH_META)
	$(PYTHON) -m repro.cli engine bench --walks $(ENGINE_WALKS) --sample $(ENGINE_SAMPLE) --repeats $(ENGINE_REPEATS) --json $(HISTORY_DIR)/tmp/engine.json $(BENCH_META)
	$(PYTHON) -m repro.cli approx frontier --sizes $(APPROX_SIZES) --json $(HISTORY_DIR)/tmp/approx.json $(BENCH_META)
	$(PYTHON) -m repro.cli bench-merge $(HISTORY_DIR)/tmp/search.json $(HISTORY_DIR)/tmp/server.json $(HISTORY_DIR)/tmp/net.json $(HISTORY_DIR)/tmp/engine.json $(HISTORY_DIR)/tmp/approx.json --out $(HISTORY_DIR)/tmp/all.json
	$(PYTHON) -m repro.cli obs regress --baseline $(HISTORY_DIR)/baseline.jsonl --candidate $(HISTORY_DIR)/tmp/all.json --tolerance $(HISTORY_TOLERANCE) --append $(HISTORY_DIR)/trajectory.jsonl --bootstrap

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	$(PYTHON) -m repro.cli table1
	$(PYTHON) -m repro.cli fig14
	$(PYTHON) -m repro.cli compare
	$(PYTHON) -m repro.cli channels
	$(PYTHON) -m repro.cli ablation
	$(PYTHON) -m repro.cli sensitivity
	$(PYTHON) -m repro.cli faults

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
