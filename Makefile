PYTHON ?= python

# Bench-envelope stamps (see src/repro/bench_envelope.py): every
# BENCH_*.json written through the bench-* targets carries the git
# revision and a UTC timestamp, supplied here so the benches themselves
# never read clocks they do not own.
# := (immediate) so one make invocation stamps every suite with the
# same values — bench-merge checks envelope consistency across files.
ifeq ($(origin GIT_REV), undefined)
GIT_REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
endif
ifeq ($(origin BENCH_TIMESTAMP), undefined)
BENCH_TIMESTAMP := $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
endif
BENCH_META = --rev $(GIT_REV) --timestamp $(BENCH_TIMESTAMP)
BENCH_REPEATS ?= 3
BENCH_TUNERS ?= 1000

.PHONY: install test bench bench-json bench-server bench-net bench-all examples experiments clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-json:
	$(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --json BENCH_search.json $(BENCH_META)

bench-server:
	$(PYTHON) -m repro.cli bench-server --json BENCH_server.json $(BENCH_META)

bench-net:
	$(PYTHON) -m repro.cli loadtest --tuners $(BENCH_TUNERS) --check-parity --json BENCH_net.json $(BENCH_META)

bench-all: bench-json bench-server bench-net
	$(PYTHON) -m repro.cli bench-merge BENCH_search.json BENCH_server.json BENCH_net.json --out BENCH_all.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	$(PYTHON) -m repro.cli table1
	$(PYTHON) -m repro.cli fig14
	$(PYTHON) -m repro.cli compare
	$(PYTHON) -m repro.cli channels
	$(PYTHON) -m repro.cli ablation
	$(PYTHON) -m repro.cli sensitivity
	$(PYTHON) -m repro.cli faults

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
